// Package shard scales the serving layer out by space-filling-curve
// key range: a Coordinator partitions the QI domain into contiguous
// SFC key intervals (internal/sfc), runs one full serving stack —
// wal.Store, group-commit committer, epoch cache, routing accelerator
// — per interval, and routes every mutation and read by curve key.
//
// The design center is FAILURE ISOLATION, not raw fan-out. Each shard
// keeps its own circuit breaker (serve's healthy → degraded-readonly →
// recovering machine), its own WAL and fsync pipeline, and its own
// fault-injection seed; a poisoned store degrades exactly one key
// range while every sibling keeps committing and serving. The
// coordinator never averages health across shards: writes to a
// degraded range fail fast with the shard's typed error (wrapped, so
// the errors.Is taxonomy survives the boundary), writes elsewhere
// proceed untouched, and cross-shard reads either cover every range
// with fresh, healthy views or return a typed *PartialError naming
// the degraded ranges — never a silently incomplete answer.
//
// Releases compose across shards under SKALD-style reasoning: each
// shard's release is k-anonymous over its own records, records route
// to exactly one shard by a public function of their QI, and
// verify.CrossShard re-checks the joint product — range-table tiling,
// per-record key containment, global uniqueness, per-view k-anonymity,
// freshness — before any joint release leaves the coordinator. Two
// read products exist on purpose:
//
//   - Release: the concatenation of the live per-shard releases,
//     audited by CrossShard. Cheap (reuses each shard's epoch cache),
//     deterministic for a fixed shard count, but shaped by the shard
//     seams.
//   - Export: the canonical global cut — merge every shard's records,
//     sort by (curve key, ID), cut k-sized runs. Slower, but
//     byte-identical across shard counts AND worker counts: the
//     determinism anchor offline consumers diff against.
package shard

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"spatialanon/internal/attr"
	"spatialanon/internal/retry"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/serve"
	"spatialanon/internal/sfc"
	"spatialanon/internal/verify"
	"spatialanon/internal/wal"
)

// Options parameterizes a Coordinator.
type Options struct {
	// Dir is the coordinator root; shard i lives in Dir/shard-NNNN.
	Dir string
	// Shards is the number of key ranges. Default 1.
	Shards int
	// Domain is the fixed QI routing domain, one interval per
	// dimension. It must be set explicitly: routing must be a pure
	// function of a record's QI, never of the data seen so far, or two
	// coordinators over the same configuration would route the same
	// record differently. Points outside the domain clamp to its faces
	// (the quantizer's contract), so routing still lands somewhere
	// deterministic.
	Domain attr.Box
	// Curve selects the space-filling curve keys route by.
	Curve sfc.Curve
	// Bits is the per-dimension quantizer resolution; <= 0 picks the
	// widest grid that fits 64-bit keys.
	Bits int
	// Tree configures each shard's index identically.
	Tree rplustree.Config
	// Serve configures each shard's serving layer. The retry policy's
	// jitter seed is re-derived per shard so shard committers never
	// share a backoff stream. DeadlineTicks and QueueDepth apply per
	// shard: a stalled fsync sheds and expires submissions for its own
	// key range only.
	Serve serve.Options
	// CheckpointEvery, PageSize, PoolPages and NoSync tune each
	// shard's store exactly as the corresponding wal.Options fields.
	CheckpointEvery int
	PageSize        int
	PoolPages       int
	NoSync          bool
	// StoreRetry bounds each store's log-writer retries (wal.Options
	// .Retry), re-seeded per shard.
	StoreRetry retry.Policy
	// Retry bounds the coordinator's own resubmission of a mutation
	// after a shard returns a transient fault (the store rolled the
	// log back; the write did not happen). Jitter is re-seeded per
	// shard. Overload and deadline rejections are NOT retried here:
	// shedding is backpressure, and hiding it inside the coordinator
	// would un-bound the very queue the shard just bounded.
	Retry retry.Policy
	// Faults, when non-nil, is invoked once per shard while its store
	// options are assembled, letting the chaos harness install
	// per-shard injectors (AppendFault, Crash, PagerFault) derived
	// from one parent seed.
	Faults func(shard int, o *wal.Options)
	// Preload is applied to the freshly created stores — routed,
	// batched per shard — before serving starts. Create-only.
	Preload []attr.Record
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	return o
}

// shardState is one key range's serving stack plus the coordinator's
// bookkeeping about it.
type shardState struct {
	id  int
	rng verify.KeyRange
	st  *wal.Store
	srv *serve.Server
	// acked counts the mutations this shard has acknowledged durable,
	// in store-sequence units (one per op). A published view is fresh
	// iff view.Seq() >= acked: every acknowledged write is visible.
	acked atomic.Uint64
	// retry is the coordinator-side resubmission policy, jitter-seeded
	// for this shard.
	retry retry.Policy
}

// Coordinator routes mutations and reads across the shard fleet. Safe
// for concurrent use by any number of goroutines; the per-shard
// serving stacks do their own serialization.
type Coordinator struct {
	opts  Options
	quant *sfc.Quantizer
	table []verify.KeyRange
	fleet []*shardState
	dims  int
	// baseK echoes the per-shard validated tree config (rplustree
	// rejects k < 2); anonylint:k-validated.
	baseK int

	partials atomic.Int64
	retries  atomic.Int64

	relMu  sync.Mutex
	relK1  map[int]*relEntry
	expMu  sync.Mutex
	expK1  map[int]*relEntry
	closed atomic.Bool
}

// New creates a fresh coordinator: Shards new stores under Dir, the
// preload routed and applied, one serving stack per shard.
func New(opts Options) (*Coordinator, error) {
	return build(opts, true)
}

// Open reopens an existing coordinator directory: every shard's store
// runs the full audited committed-prefix recovery (wal.Open), so the
// state Open serves is deterministic in each shard's durable log —
// this is the crash-recovery path of the chaos matrix. Preload must
// be empty.
func Open(opts Options) (*Coordinator, error) {
	return build(opts, false)
}

func build(opts Options, create bool) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.Tree.Schema == nil {
		return nil, fmt.Errorf("shard: options need a tree schema")
	}
	dims := opts.Tree.Schema.Dims()
	if len(opts.Domain) != dims {
		return nil, fmt.Errorf("shard: routing domain has %d dims, schema has %d", len(opts.Domain), dims)
	}
	if !create && len(opts.Preload) > 0 {
		return nil, fmt.Errorf("shard: preload is create-only; Open recovers from the logs")
	}
	quant, err := sfc.NewQuantizer(opts.Domain, opts.Bits)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	table, err := NewTable(quant.MaxKey(), opts.Shards)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:  opts,
		quant: quant,
		table: table,
		dims:  dims,
		baseK: opts.Tree.BaseK,
		relK1: make(map[int]*relEntry),
		expK1: make(map[int]*relEntry),
	}
	preload, err := c.routePreload(opts.Preload)
	if err != nil {
		return nil, err
	}
	for i, rng := range table {
		sh, err := c.buildShard(i, rng, preload[i], create)
		if err != nil {
			c.teardown()
			return nil, fmt.Errorf("shard: shard %d %v: %w", i, rng, err)
		}
		c.fleet = append(c.fleet, sh)
	}
	return c, nil
}

// routePreload splits the preload into per-shard op batches, keeping
// input order within each shard.
func (c *Coordinator) routePreload(recs []attr.Record) ([][]wal.Op, error) {
	out := make([][]wal.Op, len(c.table))
	for _, r := range recs {
		if len(r.QI) != c.dims {
			return nil, fmt.Errorf("shard: preload record %d has %d dims, want %d", r.ID, len(r.QI), c.dims)
		}
		si := c.route(r.QI)
		out[si] = append(out[si], wal.Op{Type: wal.TypeInsert, Rec: r})
	}
	return out, nil
}

// buildShard assembles one key range's store and serving stack.
func (c *Coordinator) buildShard(id int, rng verify.KeyRange, preload []wal.Op, create bool) (*shardState, error) {
	wopts := wal.Options{
		Dir:             filepath.Join(c.opts.Dir, fmt.Sprintf("shard-%04d", id)),
		Tree:            c.opts.Tree,
		CheckpointEvery: c.opts.CheckpointEvery,
		PageSize:        c.opts.PageSize,
		PoolPages:       c.opts.PoolPages,
		NoSync:          c.opts.NoSync,
		Retry:           c.opts.StoreRetry.Derive(id),
	}
	if c.opts.Faults != nil {
		c.opts.Faults(id, &wopts)
	}
	var st *wal.Store
	var err error
	if create {
		st, err = wal.Create(wopts)
	} else {
		st, err = wal.Open(wopts)
	}
	if err != nil {
		return nil, err
	}
	if len(preload) > 0 {
		if _, err := st.ApplyBatch(preload); err != nil {
			st.Close()
			return nil, fmt.Errorf("preload: %w", err)
		}
	}
	sopts := c.opts.Serve
	sopts.Retry = sopts.Retry.Derive(id)
	srv, err := serve.New(st, sopts)
	if err != nil {
		st.Close()
		return nil, err
	}
	sh := &shardState{id: id, rng: rng, st: st, srv: srv, retry: c.opts.Retry.Derive(id)}
	sh.acked.Store(st.Seq())
	return sh, nil
}

// teardown closes whatever build assembled before failing.
func (c *Coordinator) teardown() {
	for _, sh := range c.fleet {
		sh.srv.Close()
		sh.st.Close()
	}
	c.fleet = nil
}

// route returns the shard index owning the given QI point.
func (c *Coordinator) route(qi []float64) int {
	return lookup(c.table, c.quant.Key(c.opts.Curve, qi))
}

// Insert durably inserts one record on the shard owning its QI.
func (c *Coordinator) Insert(rec attr.Record) error {
	if err := c.checkQI(rec.QI); err != nil {
		return err
	}
	sh := c.fleet[c.route(rec.QI)]
	_, err := c.do(sh, func() (bool, error) { return true, sh.srv.Insert(rec) })
	return err
}

// Delete durably deletes the record with the given id at qi, reporting
// whether it existed. qi must be the record's current QI — it selects
// the shard.
func (c *Coordinator) Delete(id int64, qi []float64) (bool, error) {
	if err := c.checkQI(qi); err != nil {
		return false, err
	}
	sh := c.fleet[c.route(qi)]
	return c.do(sh, func() (bool, error) { return sh.srv.Delete(id, qi) })
}

// Update durably relocates a record, reporting whether it existed.
// When the move stays inside one key range it is the shard's own
// atomic update. A move that crosses ranges is a delete on the old
// shard followed by an insert on the new one — two separately durable
// operations, not one atomic step: a reader between them misses the
// record (it is never duplicated), and a failed insert is compensated
// by best-effort reinsertion at the old position. The returned error
// reports which half failed.
func (c *Coordinator) Update(id int64, oldQI []float64, rec attr.Record) (bool, error) {
	if err := c.checkQI(oldQI); err != nil {
		return false, err
	}
	if err := c.checkQI(rec.QI); err != nil {
		return false, err
	}
	from := c.fleet[c.route(oldQI)]
	to := c.fleet[c.route(rec.QI)]
	if from == to {
		return c.do(from, func() (bool, error) { return from.srv.Update(id, oldQI, rec) })
	}
	found, err := c.do(from, func() (bool, error) { return from.srv.Delete(id, oldQI) })
	if err != nil {
		return false, err
	}
	if !found {
		// Mirrors rplustree.Update: a missing record is reported, not
		// inserted.
		return false, nil
	}
	if _, err := c.do(to, func() (bool, error) { return true, to.srv.Insert(rec) }); err != nil {
		// Compensate: put the record back where it durably was. If the
		// old shard degraded meanwhile the record is lost from the live
		// set until its shard recovers; both failures are reported.
		old := rec
		old.QI = oldQI
		if _, cerr := c.do(from, func() (bool, error) { return true, from.srv.Insert(old) }); cerr != nil {
			return true, fmt.Errorf("shard: cross-shard update of record %d lost both ways: insert: %w; compensation: %w", id, err, cerr)
		}
		return true, fmt.Errorf("shard: cross-shard update of record %d rolled back: %w", id, err)
	}
	return true, nil
}

// checkQI validates dimensionality before routing: routing a
// wrong-width point would index past the quantizer's domain.
func (c *Coordinator) checkQI(qi []float64) error {
	if c.closed.Load() {
		return fmt.Errorf("shard: %w", serve.ErrClosed)
	}
	if len(qi) != c.dims {
		return fmt.Errorf("shard: point has %d dims, want %d", len(qi), c.dims)
	}
	return nil
}

// do runs one shard mutation under the coordinator's bounded retry —
// transient faults only: the store's contract is that a transient
// error rolled the log back and the write did not happen, so
// resubmission can never double-commit. Typed rejections (overload,
// deadline, degraded, recovering) surface immediately, wrapped with
// the shard's identity so errors.Is still matches every sentinel in
// the chain.
func (c *Coordinator) do(sh *shardState, op func() (bool, error)) (bool, error) {
	var found bool
	attempt := 0
	err := sh.retry.Do(func() error {
		attempt++
		var oerr error
		found, oerr = op()
		return oerr
	})
	c.retries.Add(int64(attempt - 1))
	if err != nil {
		return found, fmt.Errorf("shard: shard %d %v: %w", sh.id, sh.rng, err)
	}
	sh.acked.Add(1)
	return found, nil
}

// ShardHealth is one shard's position in the coordinator's health
// table.
type ShardHealth struct {
	ID    int
	Range verify.KeyRange
	// State is the shard's circuit-breaker position.
	State serve.State
	// Err is the shard's poison cause; nil while healthy.
	Err error
	// Seq is the store sequence folded into the shard's current view;
	// Acked is the sequence the shard has acknowledged to writers. A
	// fresh view has Seq >= Acked.
	Seq   uint64
	Acked uint64
}

// Health reports every shard's breaker state, freshness and poison
// cause, in shard order.
func (c *Coordinator) Health() []ShardHealth {
	out := make([]ShardHealth, len(c.fleet))
	for i, sh := range c.fleet {
		out[i] = ShardHealth{
			ID:    sh.id,
			Range: sh.rng,
			State: sh.srv.State(),
			Err:   sh.srv.Err(),
			Seq:   sh.srv.View().Seq(),
			Acked: sh.acked.Load(),
		}
	}
	return out
}

// Recover asks one shard's server to resurrect its store in place
// (serve.Server.Recover semantics: single-flight, audited, reopens
// writes on success). Sibling shards are untouched.
func (c *Coordinator) Recover(shard int) error {
	if shard < 0 || shard >= len(c.fleet) {
		return fmt.Errorf("shard: no shard %d", shard)
	}
	sh := c.fleet[shard]
	if err := sh.srv.Recover(); err != nil {
		return fmt.Errorf("shard: shard %d %v: recover: %w", sh.id, sh.rng, err)
	}
	return nil
}

// NumShards reports the fleet size.
func (c *Coordinator) NumShards() int { return len(c.fleet) }

// Table returns a copy of the key-range table, in shard order.
func (c *Coordinator) Table() []verify.KeyRange {
	out := make([]verify.KeyRange, len(c.table))
	copy(out, c.table)
	return out
}

// Quantizer returns the fixed routing quantizer (shared, read-only).
func (c *Coordinator) Quantizer() *sfc.Quantizer { return c.quant }

// Curve returns the routing curve.
func (c *Coordinator) Curve() sfc.Curve { return c.opts.Curve }

// ShardStats pairs one shard's serving counters with its identity.
type ShardStats struct {
	ID    int
	Range verify.KeyRange
	Serve serve.Stats
}

// Stats reports per-shard serving counters plus the coordinator's own:
// cross-shard reads that returned partial results, and coordinator-
// level resubmissions of transient shard faults.
func (c *Coordinator) Stats() (perShard []ShardStats, partials, retries int64) {
	perShard = make([]ShardStats, len(c.fleet))
	for i, sh := range c.fleet {
		perShard[i] = ShardStats{ID: sh.id, Range: sh.rng, Serve: sh.srv.Stats()}
	}
	return perShard, c.partials.Load(), c.retries.Load()
}

// Close stops every shard's serving stack, then closes every store.
// All shards are closed even if some fail; the errors are joined.
func (c *Coordinator) Close() error {
	c.closed.Store(true)
	var errs []error
	for _, sh := range c.fleet {
		if err := sh.srv.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard: shard %d %v: close: %w", sh.id, sh.rng, err))
		}
	}
	for _, sh := range c.fleet {
		if err := sh.st.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard: shard %d %v: close store: %w", sh.id, sh.rng, err))
		}
	}
	return errors.Join(errs...)
}
