package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/detrng"
	"spatialanon/internal/fault"
	"spatialanon/internal/retry"
	"spatialanon/internal/serve"
	"spatialanon/internal/wal"
)

// The shard-level chaos matrix — the PR's failure-isolation claim made
// executable. Fault injection is confined to ONE shard (the victim,
// rotated by seed); the matrix then asserts the blast radius: exactly
// the victim's key range degrades, sibling shards keep acknowledging
// writes throughout, cross-shard reads name the victim's range in a
// typed partial error, joint releases are withheld rather than served
// under-k or stale, and after recovery every shard's state equals
// exactly its acknowledged prefix — per shard, deterministically,
// audited by verify.CrossShard on the way out.

// shardChaos carries one seed's bookkeeping through the taxonomy loop.
type shardChaos struct {
	c      *Coordinator
	victim int
	domain attr.Box

	degraded, transient      int
	siblingOK, partialChecks int
	// sentinels are records pre-routed to non-victim shards, spent one
	// per degradation event to prove siblings keep serving.
	sentinels []attr.Record
	extras    []attr.Record
}

// probeIsolation runs the failure-isolation battery while the victim's
// circuit is open: a sibling accepts a write, a cross-shard count
// returns a partial result naming exactly the victim's range, and the
// joint release is withheld.
func (cs *shardChaos) probeIsolation(t *testing.T) {
	t.Helper()
	if len(cs.sentinels) > 0 {
		s := cs.sentinels[0]
		cs.sentinels = cs.sentinels[1:]
		if err := cs.c.Insert(s); err != nil {
			t.Fatalf("sibling insert during shard %d degradation: %v", cs.victim, err)
		}
		cs.extras = append(cs.extras, s)
		cs.siblingOK++
	}
	_, err := cs.c.Count(cs.domain)
	if err == nil {
		t.Fatalf("cross-shard count claimed full coverage while shard %d is degraded", cs.victim)
	}
	var pe *PartialError
	if !errors.As(err, &pe) || !errors.Is(err, ErrPartial) {
		t.Fatalf("partial count error outside the taxonomy: %v", err)
	}
	if len(pe.Shards) != 1 || pe.Shards[0] != cs.victim {
		t.Fatalf("partial count names shards %v; fault injection was confined to shard %d", pe.Shards, cs.victim)
	}
	if _, err := cs.c.Release(0); !errors.Is(err, ErrPartial) {
		t.Fatalf("joint release with shard %d degraded: %v, want withheld with ErrPartial", cs.victim, err)
	}
	cs.partialChecks++
}

// submit pushes one record to acknowledgment through whatever the
// victim's fault schedule throws at it, running the isolation battery
// every time the victim's circuit opens. Mirrors the serve-level
// chaosSubmit, with one addition: a degradation anywhere but the
// victim fails the matrix — that would be blast radius.
func (cs *shardChaos) submit(t *testing.T, rec attr.Record, firstErr error) {
	t.Helper()
	err := firstErr
	for attempt := 0; ; attempt++ {
		if err == nil {
			return
		}
		if attempt >= 20 {
			t.Fatalf("record %d never committed: %v", rec.ID, err)
		}
		switch {
		case errors.Is(err, serve.ErrDegraded):
			cs.degraded++
			if !errors.Is(err, wal.ErrPoisoned) {
				t.Fatalf("degraded error chain lost the poison cause: %v", err)
			}
			if si := cs.c.route(rec.QI); si != cs.victim {
				t.Fatalf("shard %d degraded; fault injection was confined to shard %d", si, cs.victim)
			}
			sh := cs.c.fleet[cs.victim]
			if sh.srv.State() == serve.StateDegraded {
				cs.probeIsolation(t)
				// Resurrect the victim only. The fault budget is bounded,
				// so this converges; each failed attempt burns more of it.
				ok := false
				for a := 0; a < 10; a++ {
					if rerr := cs.c.Recover(cs.victim); rerr == nil {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("shard %d never resurrected: %v", cs.victim, sh.srv.Err())
				}
			}
			// The poison may have struck AFTER this op's frame committed
			// (a failed post-commit checkpoint): resolve the ambiguity
			// against the recovered store, as an idempotent client would.
			// Nothing is in flight on the victim here.
			if chaosIDs(sh.st)[rec.ID] {
				return
			}
		case errors.Is(err, serve.ErrRecovering), errors.Is(err, serve.ErrOverloaded), errors.Is(err, serve.ErrDeadlineExceeded):
			// Typed shed: not committed, resubmit.
		case retry.IsTransient(err):
			cs.transient++
		default:
			t.Fatalf("record %d: rejection outside the typed taxonomy: %v", rec.ID, err)
		}
		err = cs.c.Insert(rec)
	}
}

func TestChaosShardMatrix(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 4
	}
	const (
		nShards = 3
		nOps    = 60
	)

	// Matrix-wide coverage: the schedules must actually open the
	// victim's circuit, exercise recovery, and hit the isolation
	// battery — not just thread clean runs through the harness.
	var totalDegraded, totalRecoveries, totalInjected, totalPartials, totalSibling atomic.Int64

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := detrng.New(int64(seed) + 211)
			victim := seed % nShards

			// The victim's WAL-side device: transient write/fsync faults
			// with torn frames; every third seed schedules one guaranteed
			// permanent fault so the degrade→resurrect circuit is hit by
			// construction, not rate luck. Seeds re-derive per shard.
			fcfg := fault.FlakyConfig{
				TransientWriteRate: 0.10 * rng.Float64(),
				TransientSyncRate:  0.06 * rng.Float64(),
				PermanentWriteRate: 0.01 * rng.Float64(),
				After:              2, // Create's own manifest append passes
				MaxFaults:          2 + rng.Intn(4),
			}
			if seed%3 == 0 {
				fcfg = fault.FlakyConfig{
					PermanentWriteRate: 1,
					After:              2 + rng.Intn(nOps),
					MaxFaults:          1 + rng.Intn(2),
				}
			}
			flaky := fault.NewFlaky(int64(seed)+307, fcfg).Derive(victim)
			// The victim's pager-side device under the checkpoints:
			// transient reads/writes, torn write-backs, bit rot.
			inj := fault.NewInjector(int64(seed)+311, fault.Config{
				TransientReadRate:  0.04 * rng.Float64(),
				TransientWriteRate: 0.06 * rng.Float64(),
				TornWriteRate:      0.10 * rng.Float64(),
				BitRotRate:         0.10 * rng.Float64(),
				After:              4,
				MaxFaults:          1 + rng.Intn(3),
			}).Derive(victim)

			opts := testOptions(t, nShards)
			opts.CheckpointEvery = 7
			opts.StoreRetry = retry.Policy{Attempts: 3}
			opts.Retry = retry.Policy{Attempts: 2, Seed: int64(seed)}
			opts.Serve = serve.Options{MaxBatch: 4, QueueDepth: 16, Retry: retry.Policy{Attempts: 2}, ScrubEvery: 3}
			opts.Faults = func(id int, o *wal.Options) {
				if id != victim {
					return
				}
				o.AppendFault = flaky
				o.PagerFault = inj
			}

			c, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			finished := false
			defer func() {
				if !finished {
					c.Close()
				}
			}()

			all := makeRecords(t, nOps+24, int64(seed)+7)
			recs := all[:nOps]
			cs := &shardChaos{c: c, victim: victim, domain: testDomain(len(opts.Domain))}
			for _, s := range all[nOps:] {
				if c.route(s.QI) != victim {
					cs.sentinels = append(cs.sentinels, s)
				}
			}

			// The workload: inserts in small concurrent bursts so faults
			// land mid-group-commit, each burst resolved through the
			// taxonomy loop once it settles.
			for i := 0; i < nOps; {
				g := 1 + rng.Intn(3)
				if i+g > nOps {
					g = nOps - i
				}
				group := recs[i : i+g]
				errs := make([]error, g)
				var wg sync.WaitGroup
				for j := range group {
					j := j
					wg.Add(1)
					go func() { defer wg.Done(); errs[j] = c.Insert(group[j]) }()
				}
				wg.Wait()
				for j := range group {
					cs.submit(t, group[j], errs[j])
				}
				i += g
			}

			// One more resurrection if the very last commit's scrub opened
			// the circuit.
			if c.fleet[victim].srv.State() == serve.StateDegraded {
				if err := c.Recover(victim); err != nil {
					t.Fatalf("final resurrection: %v", err)
				}
			}
			perShard, partials, _ := c.Stats()

			// Stop serving, settle the victim's durable image (budgets are
			// spent or bounded, so scrub-and-repair converges), close.
			finished = true
			for _, sh := range c.fleet {
				if err := sh.srv.Close(); err != nil && sh.srv.Err() == nil {
					t.Fatalf("shard %d close: %v", sh.id, err)
				}
			}
			vst := c.fleet[victim].st
			settled := false
			for a := 0; a < 12 && !settled; a++ {
				if vst.Err() != nil {
					if err := vst.Recover(); err != nil {
						continue
					}
				}
				rep, err := vst.Scrub()
				if err != nil {
					continue
				}
				settled = len(rep.Corrupt) == 0
			}
			if !settled {
				t.Fatalf("victim image never settled clean: %v", vst.Err())
			}
			for _, sh := range c.fleet {
				if err := sh.st.Close(); err != nil {
					t.Fatalf("shard %d close store: %v", sh.id, err)
				}
			}

			// Acked-record contract, per shard: a clean reopen of the whole
			// fleet holds exactly the acknowledged records, each on the
			// shard that owns its key.
			want := make([]map[int64]bool, nShards)
			for i := range want {
				want[i] = make(map[int64]bool)
			}
			total := 0
			for _, r := range append(append([]attr.Record{}, recs...), cs.extras...) {
				want[c.route(r.QI)][r.ID] = true
				total++
			}
			clean := opts
			clean.Faults = nil
			c2, err := Open(clean)
			if err != nil {
				t.Fatalf("clean reopen: %v", err)
			}
			c2done := false
			defer func() {
				if !c2done {
					c2.Close()
				}
			}()
			for i, sh := range c2.fleet {
				got := chaosIDs(sh.st)
				for id := range want[i] {
					if !got[id] {
						t.Fatalf("shard %d lost acknowledged record %d", i, id)
					}
				}
				if len(got) != len(want[i]) {
					t.Fatalf("shard %d holds %d records, %d were acknowledged", i, len(got), len(want[i]))
				}
			}

			// The audited joint release covers exactly the acknowledged set.
			rel, err := c2.Release(0)
			if err != nil {
				t.Fatalf("joint release after recovery: %v", err)
			}
			relIDs := make(map[int64]bool)
			for _, p := range rel {
				for _, r := range p.Records {
					relIDs[r.ID] = true
				}
			}
			if len(relIDs) != total {
				t.Fatalf("joint release covers %d records, %d were acknowledged", len(relIDs), total)
			}

			// Recovery determinism: a second clean reopen must export the
			// byte-identical canonical cut.
			e1, err := c2.Export(0)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			c2done = true
			if err := c2.Close(); err != nil {
				t.Fatal(err)
			}
			c3, err := Open(clean)
			if err != nil {
				t.Fatalf("second clean reopen: %v", err)
			}
			defer c3.Close()
			e2, err := c3.Export(0)
			if err != nil {
				t.Fatalf("export after second reopen: %v", err)
			}
			if !partitionsEqual(e1, e2) {
				t.Fatal("export differs across clean reopens: recovery is not deterministic")
			}

			var recov int64
			for _, s := range perShard {
				recov += s.Serve.Recoveries
			}
			totalDegraded.Add(int64(cs.degraded))
			totalRecoveries.Add(recov)
			totalInjected.Add(int64(flaky.Injected() + inj.Injected()))
			totalPartials.Add(partials)
			totalSibling.Add(int64(cs.siblingOK))
		})
	}

	t.Cleanup(func() {
		if testing.Short() {
			return
		}
		if totalInjected.Load() == 0 {
			t.Error("matrix injected no faults at all")
		}
		if totalDegraded.Load() == 0 || totalRecoveries.Load() == 0 {
			t.Errorf("matrix never exercised the per-shard degrade→resurrect circuit (degraded=%d recoveries=%d)",
				totalDegraded.Load(), totalRecoveries.Load())
		}
		if totalPartials.Load() == 0 || totalSibling.Load() == 0 {
			t.Errorf("matrix never exercised failure isolation (partial reads=%d sibling inserts=%d)",
				totalPartials.Load(), totalSibling.Load())
		}
	})
}

// TestChaosShardCrashMatrix kills the victim shard at EVERY durable
// operation in its schedule — WAL frame appends and checkpoint page
// write-backs share one crash clock, odd crash points tear the fatal
// frame — and asserts the fleet-level committed-prefix contract: the
// siblings never miss a beat, the crashing op is the only ambiguous
// one, and a clean reopen recovers each shard to exactly its
// acknowledged prefix (plus at most that one in-flight op). A fired
// crash stays dead, so unlike the flaky matrix there is no in-process
// resurrection: the reopen IS the recovery path under test.
func TestChaosShardCrashMatrix(t *testing.T) {
	seeds := 3
	if testing.Short() {
		seeds = 1
	}
	const (
		nShards = 3
		nOps    = 30
	)
	var totalCrashes, totalAmbiguous, totalSibling atomic.Int64

	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			victim := seed % nShards
			recs := makeRecords(t, nOps, int64(seed)+401)
			domain := testDomain(len(recs[0].QI))

			mkOpts := func(crash *fault.Crash) Options {
				opts := testOptions(t, nShards)
				opts.CheckpointEvery = 9
				if crash != nil {
					opts.Faults = func(id int, o *wal.Options) {
						if id != victim {
							return
						}
						o.Crash = crash
						o.PagerFault = crash
					}
				}
				return opts
			}

			// Dry run: count the victim's durable operations with a crash
			// point that never fires. That count is this seed's matrix.
			counter := &fault.Crash{}
			cd, err := New(mkOpts(counter))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range recs {
				if err := cd.Insert(r); err != nil {
					t.Fatalf("dry run insert: %v", err)
				}
			}
			if err := cd.Close(); err != nil {
				t.Fatal(err)
			}
			total := counter.Ops()
			if total == 0 {
				t.Fatal("victim performed no durable operations")
			}

			for at := 1; at <= total; at++ {
				crash := &fault.Crash{At: at, Torn: []float64{0, 0.5, 1}[at%3]}
				opts := mkOpts(crash)
				clean := opts
				clean.Faults = nil

				c, err := New(opts)
				if err != nil {
					// The victim died inside Create: nothing durable exists
					// for that range, and a clean Open of the fleet must say
					// so rather than fabricate a shard.
					if !fault.IsCrash(err) {
						t.Fatalf("at=%d: create failure outside the crash taxonomy: %v", at, err)
					}
					if _, err := Open(clean); err == nil {
						t.Fatalf("at=%d: Open invented a fleet out of a dead Create", at)
					}
					totalCrashes.Add(1)
					continue
				}

				want := make([]map[int64]bool, nShards)
				for i := range want {
					want[i] = make(map[int64]bool)
				}
				ambiguous := make(map[int64]bool)
				victimDead := false
				for _, r := range recs {
					si := c.route(r.QI)
					err := c.Insert(r)
					switch {
					case err == nil:
						want[si][r.ID] = true
					case si != victim:
						t.Fatalf("at=%d: sibling shard %d rejected a write: %v", at, si, err)
					case !victimDead:
						// The crash point fired mid-op. The op's frame may
						// have become durable before a post-commit page write
						// died, so its fate is ambiguous — a client whose ack
						// was lost.
						if !fault.IsCrash(err) {
							t.Fatalf("at=%d: first victim rejection lost the crash cause: %v", at, err)
						}
						ambiguous[r.ID] = true
						victimDead = true
					default:
						// Dead shard: fail-fast typed rejection, nothing
						// durable, siblings untouched.
						if !errors.Is(err, serve.ErrDegraded) && !fault.IsCrash(err) {
							t.Fatalf("at=%d: dead-shard rejection outside the taxonomy: %v", at, err)
						}
					}
				}

				if victimDead {
					// Blast radius while the victim is down: reads go
					// partial naming exactly the victim; releases withhold.
					_, cerr := c.Count(domain)
					var pe *PartialError
					if !errors.As(cerr, &pe) || len(pe.Shards) != 1 || pe.Shards[0] != victim {
						t.Fatalf("at=%d: partial count %v, want exactly shard %d named", at, cerr, victim)
					}
					if _, rerr := c.Release(0); !errors.Is(rerr, ErrPartial) {
						t.Fatalf("at=%d: joint release with a dead shard: %v", at, rerr)
					}
					totalSibling.Add(1)
				}
				c.Close() // the dead victim may refuse; the reopen is the arbiter
				if crash.Err() == nil {
					t.Fatalf("at=%d: crash point never fired", at)
				}

				// Clean reopen: committed-prefix recovery per shard.
				c2, err := Open(clean)
				if err != nil {
					t.Fatalf("at=%d: fleet recovery failed: %v", at, err)
				}
				fleetSize := 0
				for i, sh := range c2.fleet {
					got := chaosIDs(sh.st)
					fleetSize += len(got)
					for id := range want[i] {
						if !got[id] {
							t.Fatalf("at=%d: shard %d lost acknowledged record %d", at, i, id)
						}
					}
					for id := range got {
						if !want[i][id] && !(i == victim && ambiguous[id]) {
							t.Fatalf("at=%d: shard %d holds record %d that was never acknowledged", at, i, id)
						}
					}
				}

				// The joint release composes only when every shard is
				// releasable on its own (empty or >= k records); a sub-k
				// shard must BLOCK it — withheld is correct, under-k never.
				releasable := true
				for _, sh := range c2.fleet {
					if n := len(chaosIDs(sh.st)); n > 0 && n < testK {
						releasable = false
					}
				}
				rel, rerr := c2.Release(0)
				if !releasable {
					if rerr == nil {
						t.Fatalf("at=%d: joint release served with a sub-k shard", at)
					}
				} else if rerr != nil {
					t.Fatalf("at=%d: joint release after recovery: %v", at, rerr)
				} else {
					relIDs := make(map[int64]bool)
					for _, p := range rel {
						for _, r := range p.Records {
							relIDs[r.ID] = true
						}
					}
					if len(relIDs) != fleetSize {
						t.Fatalf("at=%d: joint release covers %d records, fleet holds %d", at, len(relIDs), fleetSize)
					}
				}
				// The canonical cut works regardless of per-shard under-k:
				// the global merge crosses the seams.
				if fleetSize >= testK {
					if _, err := c2.Export(0); err != nil {
						t.Fatalf("at=%d: export after recovery: %v", at, err)
					}
				}
				if err := c2.Close(); err != nil {
					t.Fatalf("at=%d: close recovered fleet: %v", at, err)
				}
				totalCrashes.Add(1)
				if len(ambiguous) > 0 {
					totalAmbiguous.Add(1)
				}
			}
		})
	}

	t.Cleanup(func() {
		if testing.Short() {
			return
		}
		if totalCrashes.Load() == 0 {
			t.Error("matrix fired no crash points")
		}
		if totalSibling.Load() == 0 {
			t.Error("matrix never observed siblings serving across a dead shard")
		}
		if totalAmbiguous.Load() == 0 {
			t.Error("matrix never produced an ambiguous in-flight op")
		}
	})
}
