package shard

import (
	"fmt"
	"sort"

	"spatialanon/internal/verify"
)

// NewTable partitions the inclusive key interval [0, maxKey] into n
// contiguous ranges of near-equal size (sizes differ by at most one
// key, larger ranges first), exactly tiling the domain: no gaps, no
// overlaps, first Lo zero, last Hi maxKey. The full SFC key domain
// tops out at ^uint64(0), so the arithmetic works on maxKey directly
// — the key COUNT maxKey+1 can overflow uint64 and never appears.
func NewTable(maxKey uint64, n int) ([]verify.KeyRange, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: %d shards; need at least 1", n)
	}
	un := uint64(n)
	// maxKey = q*n + rem0, so the domain holds q*n + (rem0+1) keys:
	// the first rem0+1 ranges span q+1 keys, the rest q. Everything is
	// computed on maxKey itself — neither the key count maxKey+1 nor a
	// range size ever materializes, because both overflow uint64 on
	// the full 64-bit domain (n=1 must yield the single range
	// [0, ^uint64(0)], whose size is 2^64).
	q := maxKey / un
	rem := maxKey%un + 1
	if q == 0 && rem < un {
		return nil, fmt.Errorf("shard: %d shards over %d keys leaves empty ranges", n, rem)
	}
	table := make([]verify.KeyRange, n)
	lo := uint64(0)
	for i := range table {
		hi := lo + q - 1 // q keys
		if uint64(i) < rem {
			hi = lo + q // q+1 keys
		}
		table[i] = verify.KeyRange{Lo: lo, Hi: hi}
		lo = hi + 1 // wraps to 0 after the final range; never read again
	}
	return table, nil
}

// lookup returns the index of the table range containing key. The
// table tiles the key domain by construction, so every key has exactly
// one owner.
func lookup(table []verify.KeyRange, key uint64) int {
	// The first range with Hi >= key contains it: ranges are ascending
	// and contiguous.
	return sort.Search(len(table), func(i int) bool { return table[i].Hi >= key })
}
