package shard

import (
	"math"
	"testing"

	"spatialanon/internal/attr"
	"spatialanon/internal/sfc"
)

// FuzzShardRouting drives arbitrary QI points and shard counts through
// the range table and asserts the routing law the whole package rests
// on: the table exactly tiles the key domain, every point's curve key
// has EXACTLY one owning range by linear scan, and the binary-search
// lookup agrees with that scan. A point owned by zero ranges would be
// an unroutable record; a point owned by two would double-publish it —
// either breaks the cross-shard seam audit.
func FuzzShardRouting(f *testing.F) {
	f.Add(0.0, 0.0, uint8(1), false)
	f.Add(99.99, 0.01, uint8(3), true)
	f.Add(-5.0, 250.0, uint8(6), false) // clamps to the domain faces
	f.Add(50.0, 50.0, uint8(255), true)

	domain := attr.Box{{Lo: 0, Hi: 100}, {Lo: 0, Hi: 100}}
	quants := map[bool]*sfc.Quantizer{}
	for _, hilbert := range []bool{false, true} {
		q, err := sfc.NewQuantizer(domain, 8)
		if err != nil {
			f.Fatal(err)
		}
		quants[hilbert] = q
	}

	f.Fuzz(func(t *testing.T, x, y float64, n uint8, hilbert bool) {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Skip("non-finite coordinates are rejected upstream of routing")
		}
		shards := int(n)%7 + 1
		curve := sfc.ZOrder
		if hilbert {
			curve = sfc.Hilbert
		}
		quant := quants[hilbert]
		maxKey := quant.MaxKey()
		table, err := NewTable(maxKey, shards)
		if err != nil {
			t.Fatalf("NewTable(%#x, %d): %v", maxKey, shards, err)
		}
		if table[0].Lo != 0 || table[len(table)-1].Hi != maxKey {
			t.Fatalf("table %v does not span [0, %#x]", table, maxKey)
		}
		for i := 1; i < len(table); i++ {
			if table[i].Lo != table[i-1].Hi+1 {
				t.Fatalf("gap/overlap between %v and %v", table[i-1], table[i])
			}
		}

		key := quant.Key(curve, []float64{x, y})
		owners := 0
		byScan := -1
		for i, r := range table {
			if r.Contains(key) {
				owners++
				byScan = i
			}
		}
		if owners != 1 {
			t.Fatalf("point (%v,%v) key %#x has %d owning ranges in %v", x, y, key, owners, table)
		}
		if got := lookup(table, key); got != byScan {
			t.Fatalf("lookup routes key %#x to shard %d, linear scan owns it at %d", key, got, byScan)
		}
	})
}
