package shard

import (
	"errors"
	"fmt"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/detrng"
	"spatialanon/internal/fault"
	"spatialanon/internal/retry"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/serve"
	"spatialanon/internal/verify"
	"spatialanon/internal/wal"
)

const testK = 4

// testDomain is the fixed routing domain matching makeRecords' QI
// draw: every dimension in [0, 100).
func testDomain(dims int) attr.Box {
	b := attr.NewBox(dims)
	for i := range b {
		b[i] = attr.Interval{Lo: 0, Hi: 100}
	}
	return b
}

func makeRecords(t testing.TB, n int, seed int64) []attr.Record {
	t.Helper()
	rng := detrng.New(seed)
	dims := dataset.LandsEndSchema().Dims()
	recs := make([]attr.Record, n)
	for i := range recs {
		qi := make([]float64, dims)
		for d := range qi {
			qi[d] = rng.Float64() * 100
		}
		recs[i] = attr.Record{ID: int64(i + 1), QI: qi, Sensitive: fmt.Sprintf("s%d", i)}
	}
	return recs
}

// testOptions is the baseline coordinator configuration the tests
// perturb.
func testOptions(t testing.TB, shards int) Options {
	t.Helper()
	schema := dataset.LandsEndSchema()
	return Options{
		Dir:    t.TempDir(),
		Shards: shards,
		Domain: testDomain(schema.Dims()),
		Tree:   rplustree.Config{Schema: schema, BaseK: testK},
		NoSync: true,
	}
}

func newCoordinator(t testing.TB, opts Options) *Coordinator {
	t.Helper()
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestTableTiling: range tables must exactly tile [0, maxKey] for
// every shard count, including the full 64-bit domain where the key
// COUNT overflows uint64.
func TestTableTiling(t *testing.T) {
	maxKeys := []uint64{0, 1, 5, 1<<16 - 1, 1<<32 - 1, ^uint64(0), ^uint64(0) - 3}
	for _, maxKey := range maxKeys {
		for _, n := range []int{1, 2, 3, 4, 7, 16} {
			table, err := NewTable(maxKey, n)
			// The domain holds maxKey+1 keys; more shards than keys must
			// be rejected (maxKey < n-1 avoids computing the overflowable
			// count).
			if maxKey < uint64(n)-1 {
				if err == nil {
					t.Fatalf("maxKey=%d n=%d: no error for empty ranges", maxKey, n)
				}
				continue
			}
			if err != nil {
				t.Fatalf("maxKey=%d n=%d: %v", maxKey, n, err)
			}
			if len(table) != n {
				t.Fatalf("maxKey=%d n=%d: %d ranges", maxKey, n, len(table))
			}
			if table[0].Lo != 0 {
				t.Fatalf("maxKey=%d n=%d: first Lo %d", maxKey, n, table[0].Lo)
			}
			if table[n-1].Hi != maxKey {
				t.Fatalf("maxKey=%d n=%d: last Hi %#x, want %#x", maxKey, n, table[n-1].Hi, maxKey)
			}
			var sizeLo, sizeHi uint64
			for i, r := range table {
				if r.Hi < r.Lo {
					t.Fatalf("maxKey=%d n=%d: inverted range %v", maxKey, n, r)
				}
				if i > 0 && r.Lo != table[i-1].Hi+1 {
					t.Fatalf("maxKey=%d n=%d: gap/overlap between %v and %v", maxKey, n, table[i-1], r)
				}
				size := r.Hi - r.Lo // size+1 keys; compare without +1 to dodge overflow
				if i == 0 {
					sizeLo, sizeHi = size, size
				}
				if size < sizeLo {
					sizeLo = size
				}
				if size > sizeHi {
					sizeHi = size
				}
			}
			if sizeHi-sizeLo > 1 {
				t.Fatalf("maxKey=%d n=%d: range sizes differ by more than one key", maxKey, n)
			}
			// Spot keys land in exactly one range, and lookup agrees.
			for _, key := range []uint64{0, maxKey, maxKey / 2, maxKey / 3} {
				owners := 0
				want := -1
				for i, r := range table {
					if r.Contains(key) {
						owners++
						want = i
					}
				}
				if owners != 1 {
					t.Fatalf("maxKey=%d n=%d key=%#x: %d owners", maxKey, n, key, owners)
				}
				if got := lookup(table, key); got != want {
					t.Fatalf("maxKey=%d n=%d key=%#x: lookup %d, scan %d", maxKey, n, key, got, want)
				}
			}
		}
	}
	if _, err := NewTable(2, 4); err == nil {
		t.Fatal("4 shards over 3 keys: no error")
	}
	if _, err := NewTable(10, 0); err == nil {
		t.Fatal("0 shards: no error")
	}
}

// TestRoutedMutationsAndJointRelease: the bread-and-butter path —
// records land on the shard owning their key, cross-shard updates
// move them, and the joint release passes the cross-shard audit while
// covering exactly the live set.
func TestRoutedMutationsAndJointRelease(t *testing.T) {
	c := newCoordinator(t, testOptions(t, 3))
	recs := makeRecords(t, 90, 11)
	for _, r := range recs {
		if err := c.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", r.ID, err)
		}
	}
	// Every record sits on the shard its key routes to.
	total := 0
	for _, sh := range c.fleet {
		for _, l := range sh.st.Tree().Leaves() {
			for _, r := range l.Records {
				if got := c.route(r.QI); got != sh.id {
					t.Fatalf("record %d on shard %d, routes to %d", r.ID, sh.id, got)
				}
				total++
			}
		}
	}
	if total != len(recs) {
		t.Fatalf("fleet holds %d records, inserted %d", total, len(recs))
	}

	joint, err := c.Release(0)
	if err != nil {
		t.Fatalf("joint release: %v", err)
	}
	ids := make(map[int64]bool)
	for _, p := range joint {
		for _, r := range p.Records {
			ids[r.ID] = true
		}
	}
	if len(ids) != len(recs) {
		t.Fatalf("joint release covers %d records, want %d", len(ids), len(recs))
	}
	// Coarser joint granularity stays k-bound against the base.
	if _, err := c.Release(3 * testK); err != nil {
		t.Fatalf("joint release at 3k: %v", err)
	}
	if _, err := c.Release(testK - 1); err == nil {
		t.Fatal("granularity below base k accepted")
	}

	// Cross-shard update: move a record to the far corner of the
	// domain (guaranteed different shard for 3 ranges).
	mover := recs[0]
	dest := make([]float64, len(mover.QI))
	for d := range dest {
		dest[d] = 99.9
	}
	if c.route(mover.QI) == c.route(dest) {
		t.Fatalf("test wants a cross-shard move; pick a different dest")
	}
	moved := mover
	moved.QI = dest
	found, err := c.Update(mover.ID, mover.QI, moved)
	if err != nil || !found {
		t.Fatalf("cross-shard update: found=%v err=%v", found, err)
	}
	if got := c.fleet[c.route(dest)]; !chaosIDs(got.st)[mover.ID] {
		t.Fatal("moved record not on destination shard")
	}
	if got := c.fleet[c.route(mover.QI)]; chaosIDs(got.st)[mover.ID] {
		t.Fatal("moved record still on source shard")
	}
	// Updating a missing record reports false and inserts nothing.
	found, err = c.Update(9999, mover.QI, moved)
	if err != nil || found {
		t.Fatalf("update of missing record: found=%v err=%v", found, err)
	}
	// Delete through the coordinator.
	found, err = c.Delete(moved.ID, moved.QI)
	if err != nil || !found {
		t.Fatalf("delete: found=%v err=%v", found, err)
	}

	// Count sums the shards (uniform estimate; whole-domain box must
	// see everything).
	n, err := c.Count(testDomain(c.dims))
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	if int(n+0.5) != len(recs)-1 {
		t.Fatalf("whole-domain count %.1f, want %d", n, len(recs)-1)
	}
}

// TestShardFailureIsolation: poisoning one shard's device degrades
// exactly that key range — typed errors with the full sentinel chain
// for its writes, partial counts naming its range, withheld joint
// releases — while sibling shards accept writes and serve reads
// throughout. Recovery of the victim restores joint products. This is
// also the error-taxonomy regression test: every errors.Is chain must
// survive the coordinator boundary.
func TestShardFailureIsolation(t *testing.T) {
	const victim = 1
	opts := testOptions(t, 3)
	// One guaranteed permanent device fault on the victim, budget 1, so
	// the shard degrades deterministically and recovery then succeeds.
	opts.Faults = func(shard int, o *wal.Options) {
		if shard == victim {
			o.AppendFault = fault.NewFlaky(7, fault.FlakyConfig{PermanentWriteRate: 1, After: 2, MaxFaults: 1})
		}
	}
	c := newCoordinator(t, opts)

	recs := makeRecords(t, 200, 23)
	var acked []attr.Record
	var victimErr error
	for _, r := range recs {
		err := c.Insert(r)
		if err == nil {
			acked = append(acked, r)
			continue
		}
		if c.route(r.QI) != victim {
			t.Fatalf("healthy shard %d rejected insert: %v", c.route(r.QI), err)
		}
		victimErr = err
		break
	}
	if victimErr == nil {
		t.Fatal("victim fault never fired")
	}
	// Satellite: the taxonomy chain crosses the coordinator boundary
	// intact — degraded sentinel, poison cause, all errors.Is-visible.
	if !errors.Is(victimErr, serve.ErrDegraded) {
		t.Fatalf("victim error lost serve.ErrDegraded: %v", victimErr)
	}
	if !errors.Is(victimErr, wal.ErrPoisoned) {
		t.Fatalf("victim error lost wal.ErrPoisoned: %v", victimErr)
	}

	// Victim range: further writes fail fast with the same chain.
	if err := c.Insert(recs[len(acked)]); !errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("write to degraded range: %v, want ErrDegraded", err)
	}
	// Sibling ranges: writes keep landing while the victim is down.
	siblingOK := 0
	for _, r := range recs[len(acked)+1:] {
		if c.route(r.QI) == victim {
			continue
		}
		if err := c.Insert(r); err != nil {
			t.Fatalf("sibling insert during degradation: %v", err)
		}
		acked = append(acked, r)
		if siblingOK++; siblingOK == 10 {
			break
		}
	}
	if siblingOK == 0 {
		t.Fatal("workload never hit a sibling shard")
	}

	// Health names the victim.
	for _, h := range c.Health() {
		if h.ID == victim {
			if h.State != serve.StateDegraded || h.Err == nil {
				t.Fatalf("victim health %+v, want degraded with cause", h)
			}
		} else if h.State != serve.StateHealthy {
			t.Fatalf("sibling %d health %v, want healthy", h.ID, h.State)
		}
	}

	// Cross-shard reads: partial count naming exactly the victim
	// range; joint release and export withheld with the same cause.
	_, err := c.Count(testDomain(c.dims))
	var pe *PartialError
	if !errors.As(err, &pe) || !errors.Is(err, ErrPartial) {
		t.Fatalf("count during degradation: %v, want *PartialError", err)
	}
	if len(pe.Shards) != 1 || pe.Shards[0] != victim || pe.Ranges[0] != c.table[victim] {
		t.Fatalf("partial error names %v/%v, want victim %d %v", pe.Shards, pe.Ranges, victim, c.table[victim])
	}
	if _, err := c.Release(0); !errors.Is(err, ErrPartial) {
		t.Fatalf("joint release during degradation: %v, want ErrPartial", err)
	}
	if _, err := c.Export(0); !errors.Is(err, ErrPartial) {
		t.Fatalf("export during degradation: %v, want ErrPartial", err)
	}

	// Recover the victim only; the fault budget is spent, so it lands.
	if err := c.Recover(victim); err != nil {
		t.Fatalf("recover victim: %v", err)
	}
	if got := c.fleet[victim].srv.State(); got != serve.StateHealthy {
		t.Fatalf("victim state %v after recover", got)
	}
	// Refill the victim range past base k — a recovered shard holding
	// fewer than k records cannot contribute a release of its own —
	// then the joint products are back.
	victimOK := 0
	for _, r := range makeRecords(t, 400, 99)[200:] {
		if c.route(r.QI) != victim {
			continue
		}
		if err := c.Insert(r); err != nil {
			t.Fatalf("victim insert after recovery: %v", err)
		}
		acked = append(acked, r)
		if victimOK++; victimOK == 2*testK {
			break
		}
	}
	if victimOK < testK {
		t.Fatalf("could not refill victim range (%d inserts)", victimOK)
	}
	joint, err := c.Release(0)
	if err != nil {
		t.Fatalf("joint release after recovery: %v", err)
	}
	got := make(map[int64]bool)
	for _, p := range joint {
		for _, r := range p.Records {
			got[r.ID] = true
		}
	}
	for _, r := range acked {
		if !got[r.ID] {
			t.Fatalf("acknowledged record %d missing from post-recovery joint release", r.ID)
		}
	}
	if len(got) != len(acked) {
		t.Fatalf("joint release has %d records, %d acked", len(got), len(acked))
	}
	if _, partials, _ := c.Stats(); partials == 0 {
		t.Fatal("partial counter never incremented")
	}
}

// TestTransientFaultChainSurvivesBoundary: a transient device error
// that exhausts every retry layer still identifies itself as
// transient (retry.IsTransient) through the coordinator's wrapping.
func TestTransientFaultChainSurvivesBoundary(t *testing.T) {
	opts := testOptions(t, 2)
	// All transient sync faults, unlimited budget, no retry anywhere:
	// the first insert must surface a transient error end to end.
	opts.Faults = func(shard int, o *wal.Options) {
		o.AppendFault = fault.NewFlaky(int64(3+shard), fault.FlakyConfig{TransientSyncRate: 1, After: 2})
	}
	c := newCoordinator(t, opts)
	rec := makeRecords(t, 1, 5)[0]
	err := c.Insert(rec)
	if err == nil {
		t.Fatal("insert succeeded under a 100% sync-fault schedule")
	}
	if !retry.IsTransient(err) {
		t.Fatalf("transient fault lost its kind across the boundary: %v", err)
	}
	if errors.Is(err, serve.ErrDegraded) {
		t.Fatalf("transient fault degraded the shard: %v", err)
	}
}

// TestCoordinatorRetryAbsorbsTransients: with a bounded transient
// budget and a coordinator retry policy, the mutation is resubmitted
// and eventually acknowledged — and the retry counter shows the
// coordinator did the work.
func TestCoordinatorRetryAbsorbsTransients(t *testing.T) {
	opts := testOptions(t, 2)
	opts.Retry = retry.Policy{Attempts: 6, Seed: 9}
	opts.Faults = func(shard int, o *wal.Options) {
		o.AppendFault = fault.NewFlaky(int64(13+shard), fault.FlakyConfig{TransientSyncRate: 1, After: 2, MaxFaults: 2})
	}
	c := newCoordinator(t, opts)
	for _, r := range makeRecords(t, 8, 17) {
		if err := c.Insert(r); err != nil {
			t.Fatalf("insert %d: %v", r.ID, err)
		}
	}
	if _, _, retries := c.Stats(); retries == 0 {
		t.Fatal("coordinator retry counter never moved")
	}
}

// TestJointReleaseDeterminism pins the canonical export byte-identical
// across shard counts {1,2,4} × worker counts {1,2,8}, and the joint
// concatenation release identical across worker counts at a fixed
// shard count. The export is the shard-count-invariant product; the
// concatenation is seam-shaped by design and only promises
// worker-invariance.
func TestJointReleaseDeterminism(t *testing.T) {
	recs := makeRecords(t, 240, 29)
	type run struct {
		shards, workers int
		export          []Partition
		exportCoarse    []Partition
		release         []Partition
	}
	var runs []run
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 2, 8} {
			opts := testOptions(t, shards)
			opts.Serve.Parallelism = workers
			opts.Preload = recs
			c := newCoordinator(t, opts)
			exp, err := c.Export(0)
			if err != nil {
				t.Fatalf("shards=%d workers=%d export: %v", shards, workers, err)
			}
			expC, err := c.Export(3 * testK)
			if err != nil {
				t.Fatalf("shards=%d workers=%d export 3k: %v", shards, workers, err)
			}
			rel, err := c.Release(0)
			if err != nil {
				t.Fatalf("shards=%d workers=%d release: %v", shards, workers, err)
			}
			runs = append(runs, run{shards, workers, exp, expC, rel})
		}
	}
	ref := runs[0]
	for _, r := range runs[1:] {
		if !partitionsEqual(ref.export, r.export) {
			t.Fatalf("export differs between shards=%d/workers=%d and shards=%d/workers=%d",
				ref.shards, ref.workers, r.shards, r.workers)
		}
		if !partitionsEqual(ref.exportCoarse, r.exportCoarse) {
			t.Fatalf("coarse export differs between shards=%d/workers=%d and shards=%d/workers=%d",
				ref.shards, ref.workers, r.shards, r.workers)
		}
	}
	// Concatenation releases: worker-invariant per shard count.
	for i, a := range runs {
		for _, b := range runs[i+1:] {
			if a.shards == b.shards && !partitionsEqual(a.release, b.release) {
				t.Fatalf("joint release differs between workers=%d and workers=%d at shards=%d",
					a.workers, b.workers, a.shards)
			}
		}
	}
}

// partitionsEqual compares two releases structurally: same partitions
// in the same order, same boxes, same records in the same order.
func partitionsEqual(a, b []Partition) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Box.Equal(b[i].Box) || len(a[i].Records) != len(b[i].Records) {
			return false
		}
		for j := range a[i].Records {
			ra, rb := a[i].Records[j], b[i].Records[j]
			if ra.ID != rb.ID {
				return false
			}
			for d := range ra.QI {
				if ra.QI[d] != rb.QI[d] {
					return false
				}
			}
		}
	}
	return true
}

// TestOpenRecoversFleet: a coordinator reopened over an existing
// directory serves exactly the acknowledged state, shard by shard.
func TestOpenRecoversFleet(t *testing.T) {
	opts := testOptions(t, 3)
	recs := makeRecords(t, 60, 41)
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := c.Insert(r); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	c2, err := Open(opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer c2.Close()
	joint, err := c2.Release(0)
	if err != nil {
		t.Fatalf("release after reopen: %v", err)
	}
	if err := verify.Release(joint, anonmodel.KAnonymity{K: testK}); err != nil {
		t.Fatalf("reopened joint release unaudited: %v", err)
	}
	n := 0
	for _, p := range joint {
		n += len(p.Records)
	}
	if n != len(recs) {
		t.Fatalf("reopened fleet serves %d records, acked %d", n, len(recs))
	}
}

// chaosIDs snapshots one shard store's record IDs from its live tree.
func chaosIDs(st *wal.Store) map[int64]bool {
	out := make(map[int64]bool)
	for _, l := range st.Tree().Leaves() {
		for _, r := range l.Records {
			out[r.ID] = true
		}
	}
	return out
}
