package shard

import (
	"errors"
	"fmt"
	"sort"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/serve"
	"spatialanon/internal/verify"
)

// Partition aliases the repository's release vocabulary, like serve.
type Partition = anonmodel.Partition

// ErrPartial marks a cross-shard read that could not cover every key
// range with a fresh, healthy view. Every *PartialError wraps it, so
// callers branch with errors.Is(err, ErrPartial).
var ErrPartial = errors.New("shard: partial result")

// PartialError names the key ranges a cross-shard read could not
// cover — degraded, recovering, or serving a view older than their
// acknowledged writes. Reads that can tolerate partial coverage (range
// counts) receive it alongside the partial answer; reads that cannot
// (joint releases) are withheld with it as the cause. Either way the
// degraded ranges are named: "which users am I not seeing" must never
// require guessing.
type PartialError struct {
	// Ranges lists the uncovered key ranges in shard order.
	Ranges []verify.KeyRange
	// Shards lists the matching shard indices.
	Shards []int
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("%v: %d of shard ranges unavailable: %v", ErrPartial, len(e.Ranges), e.Ranges)
}

// Unwrap ties the typed detail to the ErrPartial sentinel.
func (e *PartialError) Unwrap() error { return ErrPartial }

// shardView is one shard's frozen read state, captured at one instant.
type shardView struct {
	sh    *shardState
	view  *serve.View
	acked uint64
	state serve.State
}

func (v shardView) degraded() bool { return v.state != serve.StateHealthy }
func (v shardView) stale() bool    { return v.view.Seq() < v.acked }

// collect snapshots every shard's current view, breaker state and
// acked high-water, and reports the shards whose views are unusable
// for a covering read. The acked counter is loaded BEFORE the view so
// freshness errs toward stale: a view published between the two loads
// can only make Seq larger.
func (c *Coordinator) collect() ([]shardView, *PartialError) {
	views := make([]shardView, len(c.fleet))
	var bad *PartialError
	for i, sh := range c.fleet {
		acked := sh.acked.Load()
		views[i] = shardView{sh: sh, view: sh.srv.View(), acked: acked, state: sh.srv.State()}
		if views[i].degraded() || views[i].stale() {
			if bad == nil {
				bad = &PartialError{}
			}
			bad.Ranges = append(bad.Ranges, sh.rng)
			bad.Shards = append(bad.Shards, sh.id)
		}
	}
	if bad != nil {
		c.partials.Add(1)
	}
	return views, bad
}

// Count estimates the number of records inside q across the fleet. It
// sums each covered shard's epoch-cache estimate; when some shards
// are degraded or stale the sum of the healthy ranges is still
// returned, with a *PartialError naming what is missing — a partial
// count over named ranges is useful, a silently low count is a lie.
// A healthy shard holding fewer than base-k records contributes zero
// without error: the estimate is defined over released partitions, and
// a sub-k shard has none to release yet — exactly what a consumer of
// the joint product sees.
func (c *Coordinator) Count(q attr.Box) (float64, error) {
	if len(q) != c.dims {
		return 0, fmt.Errorf("shard: query box has %d dims, want %d", len(q), c.dims)
	}
	views, bad := c.collect()
	sum := 0.0
	for _, v := range views {
		if v.degraded() || v.stale() || v.view.Len() < c.baseK {
			continue
		}
		n, err := v.view.Count(q)
		if err != nil {
			return 0, fmt.Errorf("shard: shard %d %v: %w", v.sh.id, v.sh.rng, err)
		}
		sum += n
	}
	if bad != nil {
		return sum, bad
	}
	return sum, nil
}

// relEntry memoizes one joint product against the epoch vector it was
// cut from: any shard publishing a new epoch invalidates it.
type relEntry struct {
	epochs []uint64
	ps     []Partition
}

// Release returns the audited joint release at granularity k1 (0 =
// base k): the concatenation of every shard's base release, passed
// through verify.CrossShard (range tiling, per-record key containment,
// global uniqueness, per-view k-anonymity, freshness), then coarsened
// to k1 by a leaf scan over the concatenation when k1 exceeds the base
// — which merges seam-adjacent boundary groups exactly like any other
// adjacent pair. A degraded or stale shard withholds the release with
// a *PartialError cause: a joint release is total or it is not a
// release. The k1 parameter is a granularity over the per-shard
// validated base k, rejected below it like serve.View.Release;
// anonylint:k-validated.
func (c *Coordinator) Release(k1 int) ([]Partition, error) {
	if k1 != 0 && k1 < c.baseK {
		return nil, fmt.Errorf("shard: granularity %d below base k %d", k1, c.baseK)
	}
	views, bad := c.collect()
	if bad != nil {
		return nil, fmt.Errorf("shard: joint release withheld: %w", bad)
	}
	epochs := make([]uint64, len(views))
	for i, v := range views {
		epochs[i] = v.view.Epoch()
	}
	c.relMu.Lock()
	if e, ok := c.relK1[k1]; ok && epochVectorEqual(e.epochs, epochs) {
		ps := e.ps
		c.relMu.Unlock()
		return ps, nil
	}
	c.relMu.Unlock()

	audit := make([]verify.ShardView, len(views))
	var joint []Partition
	for i, v := range views {
		// An empty shard releases nothing — vacuously k-anonymous — and
		// still covers its range in the audit. A shard holding 0 < n < k
		// records is genuinely unreleasable on its own and blocks the
		// joint concatenation (its error names it); Export remains
		// available there, because the global cut merges across seams.
		var base []Partition
		if v.view.Len() > 0 {
			var err error
			base, err = v.view.Base()
			if err != nil {
				return nil, fmt.Errorf("shard: shard %d %v: %w", v.sh.id, v.sh.rng, err)
			}
		}
		audit[i] = verify.ShardView{
			Range:    v.sh.rng,
			Parts:    base,
			Seq:      int64(v.view.Seq()),
			WantSeq:  int64(v.acked),
			Degraded: v.degraded(),
		}
		joint = append(joint, base...)
	}
	if err := verify.CrossShard(audit, c.table, c.quant, c.opts.Curve, c.baseK); err != nil {
		return nil, fmt.Errorf("shard: joint release withheld: %w", err)
	}
	if k1 != 0 && k1 != c.baseK {
		coarse, err := core.LeafScanP(joint, anonmodel.KAnonymity{K: k1}, c.opts.Serve.Parallelism)
		if err != nil {
			return nil, fmt.Errorf("shard: joint release at k1=%d: %w", k1, err)
		}
		if err := verify.Releases([][]Partition{joint, coarse}, c.baseK); err != nil {
			return nil, fmt.Errorf("shard: joint release at k1=%d failed k-boundness audit: %w", k1, err)
		}
		joint = coarse
	}
	c.relMu.Lock()
	c.relK1[k1] = &relEntry{epochs: epochs, ps: joint}
	c.relMu.Unlock()
	return joint, nil
}

// Export returns the canonical global cut at granularity k1 (0 = base
// k): every shard's records merged, sorted by (curve key, ID), and cut
// into consecutive runs of at least k1 records, last run merged back
// if short — the same greedy discipline as sfc.Anonymize, but over the
// coordinator's FIXED routing quantizer, so the output is a pure
// function of the record multiset and (curve, bits, k1). That makes
// it byte-identical across shard counts and worker counts: the
// determinism anchor. Like Release it is withheld with a
// *PartialError cause unless every range has a fresh, healthy view.
// The k1 granularity is rejected below the validated base k;
// anonylint:k-validated.
func (c *Coordinator) Export(k1 int) ([]Partition, error) {
	if k1 == 0 {
		k1 = c.baseK
	}
	if k1 < c.baseK {
		return nil, fmt.Errorf("shard: granularity %d below base k %d", k1, c.baseK)
	}
	views, bad := c.collect()
	if bad != nil {
		return nil, fmt.Errorf("shard: export withheld: %w", bad)
	}
	epochs := make([]uint64, len(views))
	n := 0
	for i, v := range views {
		epochs[i] = v.view.Epoch()
		n += v.view.Len()
	}
	c.expMu.Lock()
	if e, ok := c.expK1[k1]; ok && epochVectorEqual(e.epochs, epochs) {
		ps := e.ps
		c.expMu.Unlock()
		return ps, nil
	}
	c.expMu.Unlock()

	constraint := anonmodel.KAnonymity{K: k1}
	if n < k1 {
		return nil, fmt.Errorf("shard: fleet holds %d records, below granularity %d", n, k1)
	}
	recs := make([]attr.Record, 0, n)
	for _, v := range views {
		recs = append(recs, v.view.Records()...)
	}
	keys := make([]uint64, len(recs))
	idx := make([]int, len(recs))
	var cell []uint32
	for i, r := range recs {
		keys[i], cell = c.quant.KeyInto(c.opts.Curve, r.QI, cell)
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka != kb {
			return ka < kb
		}
		return recs[idx[a]].ID < recs[idx[b]].ID
	})
	var out []Partition
	start := 0
	for start < len(recs) {
		end := start
		var group []attr.Record
		for end < len(recs) && !constraint.Satisfied(group) {
			group = append(group, recs[idx[end]])
			end++
		}
		out = append(out, Partition{Records: group})
		start = end
	}
	if m := len(out); m > 1 && !constraint.Satisfied(out[m-1].Records) {
		out[m-2].Records = append(out[m-2].Records, out[m-1].Records...)
		out = out[:m-1]
	}
	for i := range out {
		box := attr.NewBox(c.dims)
		for _, r := range out[i].Records {
			box.Include(r.QI)
		}
		out[i].Box = box
	}
	if err := verify.Release(out, constraint); err != nil {
		return nil, fmt.Errorf("shard: export failed release audit: %w", err)
	}
	if err := verify.Releases([][]Partition{out}, k1); err != nil {
		return nil, fmt.Errorf("shard: export failed k-boundness audit: %w", err)
	}
	c.expMu.Lock()
	c.expK1[k1] = &relEntry{epochs: epochs, ps: out}
	c.expMu.Unlock()
	return out, nil
}

// epochVectorEqual reports whether two epoch vectors match element for
// element.
func epochVectorEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
