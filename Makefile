# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test vet bench cover experiments examples clean

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full figure + ablation benchmark sweep (writes bench_output.txt).
bench:
	$(GO) test -bench . -benchmem ./... 2>&1 | tee bench_output.txt

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -fig all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hospital
	$(GO) run ./examples/streaming
	$(GO) run ./examples/workload

clean:
	rm -f test_output.txt bench_output.txt
