# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Parameterized benchmark baseline: `make bench BENCH=BENCH_PR3.json`
# writes a new baseline without editing the Makefile.
BENCH ?= BENCH_PR7.json

.PHONY: all build test vet lint lint-json race chaos chaos-serve chaos-shard crash throughput zeroalloc read-bench fuzz bench cover experiments examples clean

all: vet test

build:
	$(GO) build ./...

# `make vet` is the whole static gate: the stock go vet suite plus
# anonylint, the project's multichecker (internal/lint) — pager
# confinement, determinism, panic policy, k-parameter validation,
# publish-freeze immutability, zero-alloc enforcement and error
# taxonomy (wrapping) hygiene.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/anonylint ./...

# anonylint alone, for quick iteration on lint findings.
lint:
	$(GO) run ./cmd/anonylint ./...

# anonylint with machine-readable output (one JSON object per finding),
# for CI annotation and tooling.
lint-json:
	$(GO) run ./cmd/anonylint -json ./...

# `make test` always vets first: the robustness layer threads errors
# through many call sites and vet's unused-result checks are cheap
# insurance. The packages carrying the parallel execution layer — and
# the concurrent serving layer over the durable store — rerun under
# the race detector on every test invocation: races there are
# correctness bugs in the determinism guarantee, not perf noise.
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/par ./internal/rplustree ./internal/mondrian ./internal/core ./internal/serve ./internal/shard ./internal/wal ./internal/lint/...

# Full suite under the race detector.
race:
	$(GO) test -race ./...

# The seeded fault-schedule harness (internal/verify), verbosely.
chaos:
	$(GO) test ./internal/verify/ -run 'TestChaos' -v

# The serve-level chaos matrix (internal/serve): seeded schedules of
# torn WAL writes, flaky fsyncs, checkpoint bit rot and bounded
# permanent faults against the full server, asserting it either
# degrades to read-only on its last audited epoch or resurrects to an
# audited k-safe state — never losing an acknowledged write, never
# serving an unaudited view.
chaos-serve:
	$(GO) test ./internal/serve/ -run 'TestChaosServeMatrix' -v

# The shard-level chaos matrix (internal/shard): fault injection
# confined to one victim shard per seed — flaky fsyncs, torn WAL
# writes, checkpoint bit rot, plus a crash at every durable operation —
# asserting sibling shards keep serving, cross-shard reads name the
# degraded range in a typed partial error, joint releases are withheld
# rather than served stale or under-k, and recovery restores exactly
# each shard's acknowledged prefix, deterministically. Runs under the
# race detector: shard routing is the concurrency seam of the fleet.
chaos-shard:
	$(GO) test -race ./internal/shard/ -run 'TestChaosShard' -v

# The WAL crash matrix: a churn workload crashed at every durable
# operation (each log append and checkpoint page write, with torn
# final frames) across a seed matrix, asserting recovery always
# converges to an audited, k-safe state (internal/wal). Covers both
# the per-op matrix and the group-commit matrix (torn multi-record
# batch frames must be all-or-nothing).
crash:
	$(GO) test ./internal/wal/ -run 'TestCrashMatrix' -v

# Quick serving-layer throughput smoke: the group-commit benchmark
# against the per-op baseline at a short benchtime — catches gross
# throughput regressions without a full bench sweep.
throughput:
	$(GO) test -run NONE -bench 'StorePerOpInsert|ServeGroupCommit|ServeReadsDuringWrites|ServePointQuery|ServeRangeQuery' -benchmem -benchtime 100ms ./internal/serve/

# Zero-alloc smoke: the warm read path (sessions, sfc key path,
# routing lookups) must report 0 allocs/op. These are regular tests
# built on testing.AllocsPerRun, so CI enforces the budget on every
# run; this target names them for quick local iteration.
zeroalloc:
	$(GO) test -run 'ZeroAlloc' -v ./internal/routing/ ./internal/query/ ./internal/serve/ ./internal/sfc/

# Targeted read-path benchmark run, merged into the committed baseline:
# re-measures the serving read benchmarks and the accelerator
# comparison without re-running the full figure sweep.
read-bench:
	$(GO) test -run NONE -bench 'ReadPoint|ReadRange|ReadEstimate|RoutingBuild|QuantizerKey|ServeReadsDuringWrites|ServePointQuery|ServeRangeQuery' -benchmem -count=3 ./internal/query/ ./internal/sfc/ ./internal/serve/ 2>&1 | tee read_bench_output.txt
	$(GO) run ./cmd/benchjson -in read_bench_output.txt -merge $(BENCH) -o $(BENCH)

# Short fuzz passes over the dataset codecs and the WAL record decoder.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzReadBinary -fuzztime=30s ./internal/dataset/
	$(GO) test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/wal/
	$(GO) test -run=NONE -fuzz=FuzzLookupVsLinear -fuzztime=30s ./internal/routing/
	$(GO) test -run=NONE -fuzz=FuzzShardRouting -fuzztime=30s ./internal/shard/

# Full figure + ablation benchmark sweep, 3 runs per benchmark for
# variance. The raw log lands in bench_output.txt; the parsed baseline
# (committed alongside the code) in $(BENCH).
bench:
	$(GO) test -run NONE -bench . -benchmem -count=3 ./... 2>&1 | tee bench_output.txt
	$(GO) run ./cmd/benchjson -in bench_output.txt -o $(BENCH)

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure of the paper's evaluation.
experiments:
	$(GO) run ./cmd/experiments -fig all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hospital
	$(GO) run ./examples/streaming
	$(GO) run ./examples/workload

clean:
	rm -f test_output.txt bench_output.txt read_bench_output.txt
