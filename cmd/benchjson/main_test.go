package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: spatialanon
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7aRTreeBulk/k=5/workers=1         	      38	  31234567 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkFig7aRTreeBulk/k=5/workers=1         	      40	  30111222 ns/op	 1234000 B/op	   12300 allocs/op
BenchmarkFig8bIOVsMemory/mem=8MB              	     100	     12345 ns/op	       924 IOs
--- PASS: TestSomething (0.01s)
PASS
ok  	spatialanon	1.234s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3 (count runs must stay separate)", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkFig7aRTreeBulk/k=5/workers=1" || b0.Pkg != "spatialanon" {
		t.Fatalf("bad first record: %+v", b0)
	}
	if b0.Iterations != 38 || b0.Metrics["ns/op"] != 31234567 || b0.Metrics["allocs/op"] != 12345 {
		t.Fatalf("bad first metrics: %+v", b0)
	}
	if doc.Benchmarks[2].Metrics["IOs"] != 924 {
		t.Fatalf("custom metric lost: %+v", doc.Benchmarks[2])
	}
}

func TestParseSkipsNoise(t *testing.T) {
	noise := "Benchmark\nBenchmarkX notanumber 12 ns/op\nrandom text\n"
	doc, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("noise parsed as results: %+v", doc.Benchmarks)
	}
}

func TestParseResultLineRejectsBadPairs(t *testing.T) {
	if _, ok := parseResultLine("BenchmarkX 10 12 ns/op trailing"); !ok {
		// A dangling odd field is ignored; the pairs before it count.
		t.Fatal("line with complete leading pairs should parse")
	}
	if _, ok := parseResultLine("BenchmarkX 10"); ok {
		t.Fatal("line with no metrics must not parse")
	}
}

// TestMerge: re-measured (pkg, name) pairs are replaced wholesale —
// all old repetitions dropped, new ones appended — while untouched
// baseline entries survive in order and the environment header follows
// the new run.
func TestMerge(t *testing.T) {
	base := &Doc{
		Goos: "linux", Goarch: "amd64", CPU: "old-cpu",
		Benchmarks: []Result{
			{Pkg: "a", Name: "BenchmarkX-8", Iterations: 10, Metrics: map[string]float64{"ns/op": 100}},
			{Pkg: "a", Name: "BenchmarkX-8", Iterations: 11, Metrics: map[string]float64{"ns/op": 101}},
			{Pkg: "a", Name: "BenchmarkY-8", Iterations: 12, Metrics: map[string]float64{"ns/op": 200}},
			{Pkg: "b", Name: "BenchmarkX-8", Iterations: 13, Metrics: map[string]float64{"ns/op": 300}},
		},
	}
	fresh := &Doc{
		Goos: "linux", Goarch: "amd64", CPU: "new-cpu",
		Benchmarks: []Result{
			{Pkg: "a", Name: "BenchmarkX-8", Iterations: 20, Metrics: map[string]float64{"ns/op": 50}},
		},
	}
	got := Merge(base, fresh)
	if got.CPU != "new-cpu" {
		t.Fatalf("CPU = %q, want the fresh run's", got.CPU)
	}
	want := []struct {
		pkg   string
		iters int64
	}{{"a", 12}, {"b", 13}, {"a", 20}}
	if len(got.Benchmarks) != len(want) {
		t.Fatalf("%d merged benchmarks, want %d: %+v", len(got.Benchmarks), len(want), got.Benchmarks)
	}
	for i, w := range want {
		if got.Benchmarks[i].Pkg != w.pkg || got.Benchmarks[i].Iterations != w.iters {
			t.Fatalf("merged[%d] = %+v, want pkg %s iters %d", i, got.Benchmarks[i], w.pkg, w.iters)
		}
	}
	// Same-name benchmark in a different package is untouched: only the
	// (pkg, name) pair the new run re-measured is replaced.
	if got.Benchmarks[1].Pkg != "b" || got.Benchmarks[1].Metrics["ns/op"] != 300 {
		t.Fatalf("pkg b's BenchmarkX was disturbed: %+v", got.Benchmarks[1])
	}
}

// TestMergeFlag drives the flag end to end through run().
func TestMergeFlag(t *testing.T) {
	dir := t.TempDir()
	basePath := dir + "/base.json"
	outPath := dir + "/out.json"
	if err := os.WriteFile(basePath, []byte(`{"goos":"linux","benchmarks":[
		{"pkg":"spatialanon","name":"BenchmarkOld-8","iterations":5,"metrics":{"ns/op":1}},
		{"pkg":"spatialanon","name":"BenchmarkFig8bIOVsMemory/mem=8MB","iterations":9,"metrics":{"ns/op":9}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-merge", basePath, "-o", outPath}, strings.NewReader(sample), io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal(enc, &doc); err != nil {
		t.Fatal(err)
	}
	// base had 2 entries; the sample re-measures Fig8b (1 entry) and
	// adds Fig7a twice: Old survives, Fig8b replaced, total 4.
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("%d benchmarks after merge, want 4: %+v", len(doc.Benchmarks), doc.Benchmarks)
	}
	if doc.Benchmarks[0].Name != "BenchmarkOld-8" {
		t.Fatalf("surviving baseline entry missing: %+v", doc.Benchmarks)
	}
	for _, b := range doc.Benchmarks {
		if b.Name == "BenchmarkFig8bIOVsMemory/mem=8MB" && b.Metrics["ns/op"] == 9 {
			t.Fatal("re-measured benchmark not replaced")
		}
	}
	if err := run([]string{"-merge", dir + "/missing.json"}, strings.NewReader(sample), io.Discard, io.Discard); err == nil {
		t.Fatal("missing merge baseline accepted")
	}
}
