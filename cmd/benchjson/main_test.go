package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: spatialanon
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7aRTreeBulk/k=5/workers=1         	      38	  31234567 ns/op	 1234567 B/op	   12345 allocs/op
BenchmarkFig7aRTreeBulk/k=5/workers=1         	      40	  30111222 ns/op	 1234000 B/op	   12300 allocs/op
BenchmarkFig8bIOVsMemory/mem=8MB              	     100	     12345 ns/op	       924 IOs
--- PASS: TestSomething (0.01s)
PASS
ok  	spatialanon	1.234s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("header not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3 (count runs must stay separate)", len(doc.Benchmarks))
	}
	b0 := doc.Benchmarks[0]
	if b0.Name != "BenchmarkFig7aRTreeBulk/k=5/workers=1" || b0.Pkg != "spatialanon" {
		t.Fatalf("bad first record: %+v", b0)
	}
	if b0.Iterations != 38 || b0.Metrics["ns/op"] != 31234567 || b0.Metrics["allocs/op"] != 12345 {
		t.Fatalf("bad first metrics: %+v", b0)
	}
	if doc.Benchmarks[2].Metrics["IOs"] != 924 {
		t.Fatalf("custom metric lost: %+v", doc.Benchmarks[2])
	}
}

func TestParseSkipsNoise(t *testing.T) {
	noise := "Benchmark\nBenchmarkX notanumber 12 ns/op\nrandom text\n"
	doc, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("noise parsed as results: %+v", doc.Benchmarks)
	}
}

func TestParseResultLineRejectsBadPairs(t *testing.T) {
	if _, ok := parseResultLine("BenchmarkX 10 12 ns/op trailing"); !ok {
		// A dangling odd field is ignored; the pairs before it count.
		t.Fatal("line with complete leading pairs should parse")
	}
	if _, ok := parseResultLine("BenchmarkX 10"); ok {
		t.Fatal("line with no metrics must not parse")
	}
}
