// Command benchjson converts `go test -bench` text output into a
// stable JSON document, so benchmark baselines can be committed and
// diffed mechanically instead of eyeballing tee'd logs.
//
// Usage:
//
//	go test -bench . -benchmem -count=3 ./... | go run ./cmd/benchjson -o BENCH.json
//	go run ./cmd/benchjson -in bench_output.txt
//
// Every benchmark result line becomes one record; with -count=N the
// same benchmark name appears N times, preserving run-to-run variance.
// Custom metrics emitted via b.ReportMetric (IOs, CM, meanErr, ...)
// are captured alongside ns/op, B/op and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark result line.
type Result struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	// Iterations is the b.N the reported per-op figures were averaged
	// over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value, e.g. "ns/op": 31234567.
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the whole converted run.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inPath := fs.String("in", "", "input file (default stdin)")
	outPath := fs.String("o", "", "output file (default stdout)")
	mergePath := fs.String("merge", "", "existing JSON baseline to merge into: its entries survive unless the new run re-measures a benchmark of the same pkg and name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	doc, err := Parse(in)
	if err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}
	if *mergePath != "" {
		prev, err := os.ReadFile(*mergePath)
		if err != nil {
			return err
		}
		var base Doc
		if err := json.Unmarshal(prev, &base); err != nil {
			return fmt.Errorf("merge baseline %s: %w", *mergePath, err)
		}
		doc = Merge(&base, doc)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		return os.WriteFile(*outPath, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// Merge overlays a fresh partial run onto an existing baseline:
// baseline entries for any (pkg, name) the new run re-measured are
// dropped (all repetitions — a re-measured benchmark is replaced
// wholesale, not appended to), everything else survives in order, and
// the new results follow. Environment fields come from the new run so
// the document reflects the machine that produced the latest numbers.
func Merge(base, fresh *Doc) *Doc {
	remeasured := make(map[string]bool, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		remeasured[b.Pkg+"\x00"+b.Name] = true
	}
	out := &Doc{Goos: fresh.Goos, Goarch: fresh.Goarch, CPU: fresh.CPU}
	if out.Goos == "" {
		out.Goos = base.Goos
	}
	if out.Goarch == "" {
		out.Goarch = base.Goarch
	}
	if out.CPU == "" {
		out.CPU = base.CPU
	}
	for _, b := range base.Benchmarks {
		if !remeasured[b.Pkg+"\x00"+b.Name] {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	out.Benchmarks = append(out.Benchmarks, fresh.Benchmarks...)
	return out
}

// Parse reads `go test -bench` output. Lines it does not recognize
// (test PASS/ok lines, build noise) are skipped, so piping a whole
// multi-package run through is fine.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseResultLine(line)
			if ok {
				res.Pkg = pkg
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResultLine parses one result line of the form
//
//	BenchmarkName-8   38   31234567 ns/op   123 B/op   4 allocs/op   9 IOs
//
// i.e. name, iteration count, then (value, unit) pairs.
func parseResultLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Need at least name, iterations, and one value-unit pair.
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, len(res.Metrics) > 0
}
