// Command anonykit anonymizes a table with any algorithm in the
// repository and reports the quality of the result.
//
// Usage:
//
//	anonykit -dataset patients -n 2000 -algo rtree -k 10
//	anonykit -dataset landsend -in sales.csv -algo mondrian -k 25 -compact -out anon.csv
//	anonykit -dataset patients -n 5000 -algo rtree -k 5 -l 3
//	anonykit -dataset landsend -n 10000 -algo rtree -k 10 -bias zipcode
//	anonykit -dataset patients -n 5000 -algo rtree -k 5 -granularities 5,20,50 -out rel.csv
//	anonykit -dataset patients -n 2000 -algo rtree -k 10 -persist ./store
//	anonykit reopen -persist ./store -dataset patients -k 10
//
// The anonymized table is written as CSV to -out (default stdout); the
// quality report (partition count, discernibility, certainty, KL
// divergence) goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/sfc"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "anonykit:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) > 0 && args[0] == "reopen" {
		return runReopen(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("anonykit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dsName  = fs.String("dataset", "patients", "schema/generator: patients, landsend or agrawal")
		n       = fs.Int("n", 1000, "records to generate when -in is not given")
		seed    = fs.Int64("seed", 1, "generator seed")
		inPath  = fs.String("in", "", "input CSV (columns must match the -dataset schema)")
		outPath = fs.String("out", "", "output CSV path (default stdout)")
		algo    = fs.String("algo", "rtree", "algorithm: rtree, mondrian, mondrian-relaxed, hilbert, zorder, grid, quad or bptree (1-D; see -key)")
		k       = fs.Int("k", 10, "anonymity parameter k")
		l       = fs.Int("l", 0, "require distinct l-diversity on the sensitive attribute")
		alpha   = fs.Float64("alpha", 0, "require (alpha,k)-anonymity on the sensitive attribute")
		doComp  = fs.Bool("compact", false, "compact the output partitions (Section 4); the rtree output is always compact")
		bias    = fs.String("bias", "", "comma-separated attributes the rtree split policy should favor")
		keyAttr = fs.String("key", "", "bptree only: the attribute to index on (default: first attribute)")
		persist = fs.String("persist", "", "rtree only: build inside a durable store at this directory (WAL + checkpoint; recover with `anonykit reopen`)")
		grans   = fs.String("granularities", "", "rtree only: comma-separated k values; emits one table per granularity (out.k<N>.csv) from a single index, verified collusion-safe")
		workers = fs.Int("workers", 0, "worker goroutines for anonymization (0 = all cores, 1 = serial; output is identical for every setting)")
		quiet   = fs.Bool("quiet", false, "suppress the quality report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	schema, gen, err := schemaFor(*dsName)
	if err != nil {
		return err
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	ks, err := validateFlags(schema, *algo, *n, *inPath != "", *k, *l, *alpha, *bias, *keyAttr, *grans, *outPath, *persist)
	if err != nil {
		return err
	}
	var recs []attr.Record
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err = dataset.ReadCSV(f, schema)
		if err != nil {
			return err
		}
	} else {
		recs = gen(*n, *seed)
	}
	if len(recs) == 0 {
		return fmt.Errorf("no input records")
	}

	if *persist != "" {
		return runPersist(*persist, schema, recs, *k, *outPath, *quiet, stdout, stderr)
	}

	constraint, err := buildConstraint(*k, *l, *alpha)
	if err != nil {
		return err
	}
	anonymizer, err := buildAnonymizer(*algo, schema, constraint, *doComp, *bias, *keyAttr, *workers)
	if err != nil {
		return err
	}

	if len(ks) > 0 {
		return multiGranular(anonymizer.(*core.RTreeAnonymizer), schema, recs, ks, *outPath, *quiet, stderr)
	}

	ps, err := anonymizer.Anonymize(recs)
	if err != nil {
		return err
	}
	if err := anonmodel.CheckAnonymity(ps, constraint); err != nil {
		return fmt.Errorf("internal error — output violates %v: %w", constraint, err)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := core.WriteCSV(out, schema, ps); err != nil {
		return err
	}

	if !*quiet {
		domain := attr.DomainOf(schema.Dims(), recs)
		rep := quality.Measure(schema, ps, domain)
		fmt.Fprintf(stderr, "%s: %d records -> %d partitions under %v\n",
			anonymizer.Name(), len(recs), rep.Partitions, constraint)
		fmt.Fprintf(stderr, "discernibility %.0f  certainty %.2f  KL %.4f  (GCP %.4f)\n",
			rep.Discernibility, rep.Certainty, rep.KLDivergence,
			quality.GlobalCertainty(schema, ps, domain))
	}
	return nil
}

// algoNames are the accepted -algo values, checked before any data is
// touched.
var algoNames = []string{"rtree", "mondrian", "mondrian-relaxed", "hilbert", "zorder", "grid", "quad", "bptree"}

// validateFlags cross-checks the flag set before any records are
// generated or loaded, so a bad invocation fails in microseconds with
// one clear message instead of after an expensive load (or, worse,
// partway through writing multi-granular output files). It returns the
// parsed -granularities list (nil when the flag is absent).
func validateFlags(schema *attr.Schema, algo string, n int, haveIn bool, k, l int, alpha float64, bias, keyAttr, grans, outPath, persist string) ([]int, error) {
	known := false
	for _, a := range algoNames {
		known = known || a == algo
	}
	if !known {
		return nil, fmt.Errorf("unknown algorithm %q (want one of %s)", algo, strings.Join(algoNames, ", "))
	}
	if k < 2 {
		return nil, fmt.Errorf("-k must be >= 2 (k=1 is no anonymity), got %d", k)
	}
	if !haveIn && n < 1 {
		return nil, fmt.Errorf("-n must be >= 1 when generating records, got %d", n)
	}
	if l < 0 {
		return nil, fmt.Errorf("-l must be >= 0, got %d", l)
	}
	if l > 0 && alpha > 0 {
		return nil, fmt.Errorf("-l and -alpha are mutually exclusive")
	}
	if alpha != 0 && (alpha < 0 || alpha > 1) {
		return nil, fmt.Errorf("-alpha must be in (0,1], got %g", alpha)
	}
	if (l > 0 || alpha > 0) && schema.Sensitive == "" {
		return nil, fmt.Errorf("-l/-alpha need a sensitive attribute, and the chosen dataset declares none")
	}
	if bias != "" && algo != "rtree" {
		return nil, fmt.Errorf("-bias only applies to -algo rtree")
	}
	if persist != "" {
		if algo != "rtree" {
			return nil, fmt.Errorf("-persist only applies to -algo rtree (the durable store wraps the index)")
		}
		if l > 0 || alpha > 0 {
			return nil, fmt.Errorf("-persist supports plain k-anonymity only")
		}
		if grans != "" {
			return nil, fmt.Errorf("-persist and -granularities are mutually exclusive")
		}
	}
	if keyAttr != "" && algo != "bptree" {
		return nil, fmt.Errorf("-key only applies to -algo bptree")
	}
	if grans == "" {
		return nil, nil
	}
	if algo != "rtree" {
		return nil, fmt.Errorf("-granularities requires -algo rtree (multi-granular release exploits the index)")
	}
	if outPath == "" {
		return nil, fmt.Errorf("-granularities needs -out (one file per granularity)")
	}
	var ks []int
	for _, part := range strings.Split(grans, ",") {
		g, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || g < 1 {
			return nil, fmt.Errorf("bad granularity %q", part)
		}
		if g < k {
			return nil, fmt.Errorf("granularity %d is finer than the base k=%d; a release below the index's k would break the collusion guarantee", g, k)
		}
		ks = append(ks, g)
	}
	return ks, nil
}

// multiGranular derives one release per requested granularity from a
// single index (Section 3), writes each as CSV, and verifies the set is
// jointly collusion-safe before reporting success.
func multiGranular(rt *core.RTreeAnonymizer, schema *attr.Schema, recs []attr.Record, ks []int, outPath string, quiet bool, stderr io.Writer) error {
	if err := rt.Load(recs); err != nil {
		return err
	}
	releases, err := rt.MultiGranular(ks)
	if err != nil {
		return err
	}
	sets := make([][]anonmodel.Partition, len(releases))
	for i, rel := range releases {
		sets[i] = rel.Partitions
		path := fmt.Sprintf("%s.k%d.csv", strings.TrimSuffix(outPath, ".csv"), rel.Granularity)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := core.WriteCSV(f, schema, rel.Partitions); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(stderr, "k=%d: %d partitions -> %s\n", rel.Granularity, len(rel.Partitions), path)
		}
	}
	base := rt.Constraint().MinSize()
	if err := core.VerifyCollusionSafety(sets, base); err != nil {
		return fmt.Errorf("release set failed the collusion check: %w", err)
	}
	if !quiet {
		fmt.Fprintf(stderr, "collusion check over %d releases: safe at k=%d\n", len(releases), base)
	}
	return nil
}

func schemaFor(name string) (*attr.Schema, func(int, int64) []attr.Record, error) {
	switch name {
	case "patients":
		return dataset.PatientsSchema(), dataset.GeneratePatients, nil
	case "landsend":
		return dataset.LandsEndSchema(), dataset.GenerateLandsEnd, nil
	case "agrawal":
		return dataset.AgrawalSchema(), dataset.GenerateAgrawal, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q (want patients, landsend or agrawal)", name)
	}
}

func buildConstraint(k, l int, alpha float64) (anonmodel.Constraint, error) {
	if k < 2 {
		return nil, fmt.Errorf("k must be >= 2 (k=1 is no anonymity), got %d", k)
	}
	var cons anonmodel.Constraint = anonmodel.KAnonymity{K: k}
	switch {
	case l > 0 && alpha > 0:
		return nil, fmt.Errorf("-l and -alpha are mutually exclusive")
	case l > 0:
		cons = anonmodel.LDiversity{K: k, L: l}
	case alpha > 0:
		cons = anonmodel.AlphaK{K: k, Alpha: alpha}
	}
	return cons, nil
}

func buildAnonymizer(algo string, schema *attr.Schema, cons anonmodel.Constraint, doCompact bool, bias, keyAttr string, workers int) (core.Anonymizer, error) {
	switch algo {
	case "rtree":
		cfg := core.RTreeConfig{Schema: schema, Constraint: cons, Parallelism: workers}
		if bias != "" {
			var axes []int
			for _, name := range strings.Split(bias, ",") {
				idx := schema.AttrIndex(strings.TrimSpace(name))
				if idx < 0 {
					return nil, fmt.Errorf("unknown bias attribute %q", name)
				}
				axes = append(axes, idx)
			}
			cfg.Split = rplustree.BiasedPolicy{Axes: axes}
		}
		return core.NewRTreeAnonymizer(cfg)
	case "mondrian", "mondrian-relaxed":
		return &core.MondrianAnonymizer{
			Schema:      schema,
			Constraint:  cons,
			Relaxed:     algo == "mondrian-relaxed",
			Compact:     doCompact,
			Parallelism: workers,
		}, nil
	case "hilbert":
		return &core.SFCAnonymizer{Curve: sfc.Hilbert, Constraint: cons}, nil
	case "zorder":
		return &core.SFCAnonymizer{Curve: sfc.ZOrder, Constraint: cons}, nil
	case "grid":
		return &core.GridAnonymizer{Schema: schema, Constraint: cons, Compact: doCompact, Parallelism: workers}, nil
	case "quad":
		return &core.QuadAnonymizer{Schema: schema, Constraint: cons}, nil
	case "bptree":
		key := 0
		if keyAttr != "" {
			if key = schema.AttrIndex(keyAttr); key < 0 {
				return nil, fmt.Errorf("unknown key attribute %q", keyAttr)
			}
		}
		return &core.BPTreeAnonymizer{Schema: schema, Constraint: cons, Key: key}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}
