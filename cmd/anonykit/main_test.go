package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/dataset"
)

func runOK(t *testing.T, args ...string) (string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errBuf.String())
	}
	return out.String(), errBuf.String()
}

func TestRTreeOnPatients(t *testing.T) {
	out, report := runOK(t, "-dataset", "patients", "-n", "200", "-algo", "rtree", "-k", "10", "-seed", "3")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 201 {
		t.Fatalf("%d output lines", len(lines))
	}
	if lines[0] != "age,sex,zipcode,ailment" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(report, "rtree: 200 records") || !strings.Contains(report, "10-anonymity") {
		t.Fatalf("report: %q", report)
	}
	if !strings.Contains(report, "discernibility") {
		t.Fatalf("report missing metrics: %q", report)
	}
}

func TestEveryAlgorithmRuns(t *testing.T) {
	for _, algo := range []string{"rtree", "mondrian", "mondrian-relaxed", "hilbert", "zorder", "grid", "quad", "bptree"} {
		out, _ := runOK(t, "-dataset", "landsend", "-n", "300", "-algo", algo, "-k", "5", "-quiet")
		if len(strings.Split(strings.TrimSpace(out), "\n")) != 301 {
			t.Fatalf("%s: wrong row count", algo)
		}
	}
}

func TestConstraintFlags(t *testing.T) {
	_, report := runOK(t, "-dataset", "patients", "-n", "400", "-algo", "rtree", "-k", "5", "-l", "3")
	if !strings.Contains(report, "l-diversity") {
		t.Fatalf("report: %q", report)
	}
	_, report = runOK(t, "-dataset", "patients", "-n", "400", "-algo", "mondrian", "-k", "5", "-alpha", "0.6")
	if !strings.Contains(report, "(0.6,5)-anonymity") {
		t.Fatalf("report: %q", report)
	}
}

func TestBiasFlag(t *testing.T) {
	_, report := runOK(t, "-dataset", "landsend", "-n", "500", "-algo", "rtree", "-k", "5", "-bias", "zipcode")
	if !strings.Contains(report, "rtree") {
		t.Fatalf("report: %q", report)
	}
}

func TestCSVInOut(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.csv")
	out := filepath.Join(dir, "out.csv")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(f, dataset.PatientsSchema(), dataset.GeneratePatients(100, 9)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	runOK(t, "-dataset", "patients", "-in", in, "-out", out, "-algo", "mondrian", "-k", "10", "-compact", "-quiet")
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) != 101 {
		t.Fatal("output row count wrong")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-algo", "nope"},
		{"-k", "0"},
		{"-k", "5", "-l", "2", "-alpha", "0.5"},
		{"-dataset", "patients", "-n", "0"},
		{"-dataset", "landsend", "-algo", "rtree", "-bias", "nope", "-n", "50"},
		{"-in", "/does/not/exist.csv"},
		{"-dataset", "patients", "-n", "50", "-algo", "bptree", "-key", "nope"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the error message
	}{
		{"negative k", []string{"-k", "-3"}, "-k must be >= 2"},
		{"zero k", []string{"-k", "0"}, "-k must be >= 2"},
		{"identity k", []string{"-k", "1"}, "-k must be >= 2"},
		{"unknown algo", []string{"-algo", "kd-tree"}, `unknown algorithm "kd-tree"`},
		{"zero n", []string{"-n", "0"}, "-n must be >= 1"},
		{"negative n", []string{"-n", "-5"}, "-n must be >= 1"},
		{"negative l", []string{"-l", "-1"}, "-l must be >= 0"},
		{"l and alpha", []string{"-l", "2", "-alpha", "0.5"}, "mutually exclusive"},
		{"alpha above one", []string{"-alpha", "1.5"}, "-alpha must be in (0,1]"},
		{"negative alpha", []string{"-alpha", "-0.2"}, "-alpha must be in (0,1]"},
		{"l without sensitive", []string{"-dataset", "landsend", "-l", "2"}, "sensitive attribute"},
		{"alpha without sensitive", []string{"-dataset", "agrawal", "-alpha", "0.5"}, "sensitive attribute"},
		{"bias off rtree", []string{"-algo", "mondrian", "-bias", "zipcode"}, "-bias only applies"},
		{"key off bptree", []string{"-algo", "rtree", "-key", "age"}, "-key only applies"},
		{"granularities off rtree", []string{"-algo", "grid", "-granularities", "5,10", "-out", "/tmp/x.csv"}, "requires -algo rtree"},
		{"granularities without out", []string{"-granularities", "10,20"}, "needs -out"},
		{"granularity unparsable", []string{"-granularities", "10,abc", "-out", "/tmp/x.csv"}, `bad granularity "abc"`},
		{"granularity zero", []string{"-granularities", "0", "-out", "/tmp/x.csv"}, `bad granularity "0"`},
		{"granularity below k", []string{"-k", "10", "-granularities", "20,5", "-out", "/tmp/x.csv"}, "finer than the base k=10"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			err := run(tc.args, &out, &errBuf)
			if err == nil {
				t.Fatalf("run(%v) succeeded", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestBuildConstraint(t *testing.T) {
	c, err := buildConstraint(5, 0, 0)
	if err != nil || c.(anonmodel.KAnonymity).K != 5 {
		t.Fatalf("%v %v", c, err)
	}
	if _, err := buildConstraint(0, 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	c, _ = buildConstraint(5, 3, 0)
	if c.(anonmodel.LDiversity).L != 3 {
		t.Fatalf("%v", c)
	}
	c, _ = buildConstraint(5, 0, 0.4)
	if c.(anonmodel.AlphaK).Alpha != 0.4 {
		t.Fatalf("%v", c)
	}
}

func TestMultiGranular(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "release.csv")
	_, report := runOK(t,
		"-dataset", "patients", "-n", "800", "-seed", "12",
		"-algo", "rtree", "-k", "5",
		"-granularities", "5,20,50", "-out", out)
	for _, k := range []int{5, 20, 50} {
		path := filepath.Join(dir, "release.k"+strconv.Itoa(k)+".csv")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("release k=%d missing: %v", k, err)
		}
		if lines := strings.Count(string(data), "\n"); lines != 801 {
			t.Fatalf("k=%d release has %d lines", k, lines)
		}
	}
	if !strings.Contains(report, "collusion check over 3 releases: safe at k=5") {
		t.Fatalf("report: %q", report)
	}
}

func TestMultiGranularErrors(t *testing.T) {
	var outBuf, errBuf bytes.Buffer
	cases := [][]string{
		{"-dataset", "patients", "-n", "100", "-algo", "mondrian", "-granularities", "5,10", "-out", "/tmp/x.csv"},
		{"-dataset", "patients", "-n", "100", "-algo", "rtree", "-granularities", "5,10"},
		{"-dataset", "patients", "-n", "100", "-algo", "rtree", "-granularities", "abc", "-out", "/tmp/x.csv"},
		{"-dataset", "patients", "-n", "100", "-algo", "rtree", "-k", "10", "-granularities", "5", "-out", "/tmp/x.csv"},
	}
	for _, args := range cases {
		if err := run(args, &outBuf, &errBuf); err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
	}
}
