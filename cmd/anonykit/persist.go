package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/quality"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/wal"
)

// runPersist builds the index inside a durable store: every insert is
// write-ahead logged, the final state is checkpointed, and the release
// is emitted from the store — so a crash at any point leaves a
// recoverable directory behind (see `anonykit reopen`). The caller
// has validated k, and wal.Create re-rejects k < 2 through the tree
// config; anonylint:k-validated.
func runPersist(dir string, schema *attr.Schema, recs []attr.Record, k int, outPath string, quiet bool, stdout, stderr io.Writer) error {
	st, err := wal.Create(wal.Options{
		Dir:  dir,
		Tree: rplustree.Config{Schema: schema, BaseK: k},
	})
	if err != nil {
		return fmt.Errorf("%w (an existing store is reopened with `anonykit reopen -persist %s`)", err, dir)
	}
	defer st.Close()
	for _, r := range recs {
		if err := st.Insert(r); err != nil {
			return err
		}
	}
	// Fold the whole load into a checkpoint so the next reopen reads
	// one snapshot instead of replaying every insert.
	if err := st.Checkpoint(); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(stderr, "persisted %d records to %s (checkpointed at seq %d)\n",
			st.Len(), dir, st.Seq())
	}
	return emitRelease(st, schema, outPath, quiet, stdout, stderr)
}

// runReopen recovers a store persisted by -persist: load the last
// checkpoint, replay the committed log tail, audit, and emit the
// release — reporting what the recovery cost.
func runReopen(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("anonykit reopen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("persist", "", "store directory written by anonykit -persist (required)")
		dsName  = fs.String("dataset", "patients", "schema the store was created with: patients, landsend or agrawal")
		k       = fs.Int("k", 10, "base anonymity parameter the store was created with")
		outPath = fs.String("out", "", "output CSV path (default stdout)")
		quiet   = fs.Bool("quiet", false, "suppress the recovery and quality reports")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("reopen needs -persist <dir>")
	}
	if *k < 2 {
		return fmt.Errorf("-k must be >= 2 (k=1 is no anonymity), got %d", *k)
	}
	schema, _, err := schemaFor(*dsName)
	if err != nil {
		return err
	}
	st, err := wal.Open(wal.Options{
		Dir:  *dir,
		Tree: rplustree.Config{Schema: schema, BaseK: *k},
	})
	if err != nil {
		return err
	}
	defer st.Close()
	if !*quiet {
		rs := st.RecoveryStats()
		fmt.Fprintf(stderr, "recovered %d records: checkpoint at seq %d + %d replayed ops (%d torn bytes discarded)\n",
			st.Len(), rs.CheckpointSeq, rs.Replayed, rs.TornBytes)
		fmt.Fprintf(stderr, "recovery I/O: %d snapshot pages (%d B) + %d B log, %d page reads; audit passed\n",
			rs.SnapshotPages, rs.SnapshotBytes, rs.LogBytes, rs.PagerReads)
	}
	return emitRelease(st, schema, *outPath, *quiet, stdout, stderr)
}

// emitRelease writes the store's base release as CSV and reports its
// quality.
func emitRelease(st *wal.Store, schema *attr.Schema, outPath string, quiet bool, stdout, stderr io.Writer) error {
	k := st.Tree().Config().BaseK
	ps, err := st.Release(0)
	if err != nil {
		return err
	}
	constraint := anonmodel.KAnonymity{K: k}
	if err := anonmodel.CheckAnonymity(ps, constraint); err != nil {
		return fmt.Errorf("internal error — output violates %v: %w", constraint, err)
	}
	out := stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := core.WriteCSV(out, schema, ps); err != nil {
		return err
	}
	if !quiet {
		var recs []attr.Record
		for _, l := range st.Tree().Leaves() {
			recs = append(recs, l.Records...)
		}
		domain := attr.DomainOf(schema.Dims(), recs)
		rep := quality.Measure(schema, ps, domain)
		fmt.Fprintf(stderr, "durable rtree: %d records -> %d partitions under %v\n",
			len(recs), rep.Partitions, constraint)
		fmt.Fprintf(stderr, "discernibility %.0f  certainty %.2f  KL %.4f  (GCP %.4f)\n",
			rep.Discernibility, rep.Certainty, rep.KLDivergence,
			quality.GlobalCertainty(schema, ps, domain))
	}
	return nil
}
