// Command datagen generates the synthetic data sets of the paper's
// evaluation: the Lands End-like customer-sale table (8 attributes,
// 32-byte binary records), the Agrawal et al. synthetic table (9
// attributes, 36-byte records), and the Figure 1 patients table.
//
// Usage:
//
//	datagen -dataset landsend -n 1000000 -format bin -out landsend.bin
//	datagen -dataset agrawal -n 100000 -format csv -out agrawal.csv
//	datagen -dataset patients -n 500
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dsName = fs.String("dataset", "landsend", "generator: patients, landsend or agrawal")
		n      = fs.Int("n", 10000, "number of records")
		seed   = fs.Int64("seed", 1, "generator seed")
		format = fs.String("format", "csv", "output format: csv or bin (bin is the paper's fixed-width 32/36-byte layout)")
		out    = fs.String("out", "", "output path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("-n must be non-negative")
	}

	var (
		schema *attr.Schema
		stream func(int, int64) *dataset.Stream
	)
	switch *dsName {
	case "patients":
		schema, stream = dataset.PatientsSchema(), dataset.PatientsStream
	case "landsend":
		schema, stream = dataset.LandsEndSchema(), dataset.LandsEndStream
	case "agrawal":
		schema, stream = dataset.AgrawalSchema(), dataset.AgrawalStream
	default:
		return fmt.Errorf("unknown dataset %q (want patients, landsend or agrawal)", *dsName)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		w = bw
	}

	switch *format {
	case "csv":
		recs := dataset.Collect(stream(*n, *seed))
		if err := dataset.WriteCSV(w, schema, recs); err != nil {
			return err
		}
	case "bin":
		if *dsName == "patients" {
			return fmt.Errorf("the patients table has a string sensitive attribute; use -format csv")
		}
		codec := dataset.NewBinaryCodec(schema.Dims())
		written, err := codec.WriteBinary(w, stream(*n, *seed))
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d records x %d bytes\n", written, codec.RecordSize())
	default:
		return fmt.Errorf("unknown format %q (want csv or bin)", *format)
	}
	return nil
}
