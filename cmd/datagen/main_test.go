package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVToStdout(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "patients", "-n", "25", "-format", "csv"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 26 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[0] != "age,sex,zipcode,ailment" {
		t.Fatalf("header %q", lines[0])
	}
}

func TestBinaryToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "le.bin")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "landsend", "-n", "100", "-format", "bin", "-out", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's layout: 32 bytes per Lands End record.
	if info.Size() != 3200 {
		t.Fatalf("file size %d, want 3200", info.Size())
	}
	if !strings.Contains(errBuf.String(), "wrote 100 records x 32 bytes") {
		t.Fatalf("stderr %q", errBuf.String())
	}
}

func TestAgrawalBinRecordSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ag.bin")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-dataset", "agrawal", "-n", "10", "-format", "bin", "-out", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	info, _ := os.Stat(path)
	if info.Size() != 360 {
		t.Fatalf("file size %d, want 360 (36 bytes per record)", info.Size())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-dataset", "nope"},
		{"-format", "nope"},
		{"-n", "-1"},
		{"-dataset", "patients", "-format", "bin"},
		{"-out", "/no/such/dir/file.csv"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
	}
}
