package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"time"

	"spatialanon/internal/attr"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/serve"
	"spatialanon/internal/shard"
)

// boundingDomain computes the fixed routing domain for a sharded run:
// the bounding box of every record the run will ever submit, padded by
// one unit per dimension so the churn profile's relocations (QI[0]+1)
// stay inside. The domain is a pure function of the generator
// parameters, so routing is identical across runs and shard counts.
func boundingDomain(batches ...[]attr.Record) attr.Box {
	var box attr.Box
	for _, recs := range batches {
		for _, r := range recs {
			if box == nil {
				box = attr.NewBox(len(r.QI))
				for d := range box {
					box[d] = attr.Interval{Lo: r.QI[d], Hi: r.QI[d]}
				}
				continue
			}
			box.Include(r.QI)
		}
	}
	for d := range box {
		box[d].Lo--
		box[d].Hi++
	}
	return box
}

// shardBucket accumulates one writer's samples for one shard.
type shardBucket struct {
	lats []time.Duration
	ec   errCounts
}

// shardedRun drives the churn workload through a shard.Coordinator:
// one serving stack per SFC key range, mutations routed by curve key.
// Reporting is per shard — ops/sec, latency quantiles, error-class
// counts and shed rate for each key range — because the whole point of
// sharding is that load and failure stay rangewise.
func shardedRun(c config, dir string, schema *attr.Schema, generate func(n int, seed int64) []attr.Record, out io.Writer) error {
	recs := generate(c.n, c.seed)
	churn := generate(c.ops+c.writers, c.seed+1)
	for i := range churn {
		churn[i].ID = int64(c.n + i + 1)
	}

	co, err := shard.New(shard.Options{
		Dir:     dir,
		Shards:  c.shards,
		Domain:  boundingDomain(recs, churn),
		Tree:    rplustree.Config{Schema: schema, BaseK: c.k},
		Serve:   serve.Options{MaxBatch: c.batch, QueueDepth: c.queue, DeadlineTicks: c.deadline},
		NoSync:  c.nosync,
		Preload: recs,
	})
	if err != nil {
		return err
	}
	defer co.Close()

	// Route classifier for the report: which shard owns a QI point.
	table := co.Table()
	quant := co.Quantizer()
	curve := co.Curve()
	routeOf := func(qi []float64) int {
		key := quant.Key(curve, qi)
		for i, r := range table {
			if r.Contains(key) {
				return i
			}
		}
		return len(table) - 1 // unreachable: the table tiles the domain
	}

	// Graceful SIGINT drain, as in the single-store profiles.
	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	defer signal.Stop(sigCh)
	runDone := make(chan struct{})
	defer close(runDone)
	go func() {
		select {
		case <-sigCh:
			fmt.Fprintf(out, "loadgen: interrupt — draining in-flight operations\n")
			close(stop)
		case <-runDone:
		}
	}()

	fmt.Fprintf(out, "loadgen: %s sharded n=%d k=%d shards=%d writers=%d readers=%d batch=%d ops=%d fsync=%v\n",
		c.dataset, c.n, c.k, c.shards, c.writers, c.readers, c.batch, c.ops, !c.nosync)

	var (
		wg         sync.WaitGroup
		writersWG  sync.WaitGroup
		buckets    = make([][]shardBucket, c.writers) // [writer][shard]
		readerLats = make([][]time.Duration, c.readers)
		partials   int64
		partialsMu sync.Mutex
		errMu      sync.Mutex
		firstErr   error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	stopReaders := make(chan struct{})
	start := time.Now() // anonylint:wall-clock — throughput measurement only

	for w := 0; w < c.writers; w++ {
		w := w
		buckets[w] = make([]shardBucket, c.shards)
		wg.Add(1)
		writersWG.Add(1)
		go func() {
			defer wg.Done()
			defer writersWG.Done()
			// Same striped churn cycle as the single-store profile:
			// insert → relocate → delete over the writer's own keys. The
			// relocation may cross a shard seam — that path is part of
			// what a sharded run measures.
			var cur attr.Record
			j := 0
			for i := w; i < c.ops; i += c.writers {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				var si int
				t0 := time.Now() // anonylint:wall-clock — latency sample
				switch j % 3 {
				case 0:
					cur = churn[i]
					si = routeOf(cur.QI)
					err = co.Insert(cur)
				case 1:
					moved := attr.Record{ID: cur.ID, QI: append([]float64(nil), cur.QI...), Sensitive: cur.Sensitive}
					moved.QI[0]++
					si = routeOf(moved.QI)
					_, err = co.Update(cur.ID, cur.QI, moved)
					cur = moved
				case 2:
					si = routeOf(cur.QI)
					_, err = co.Delete(cur.ID, cur.QI)
				}
				b := &buckets[w][si]
				b.lats = append(b.lats, time.Since(t0)) // anonylint:wall-clock — latency sample
				if c.overload {
					b.ec.classify(err)
				} else if err != nil {
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
				j++
			}
		}()
	}

	// Readers run cross-shard products: a whole-domain count and the
	// audited joint release. A partial result (only possible when a
	// shard degrades) is counted, not fatal — that is the coordinator
	// doing its job.
	domain := boundingDomain(recs, churn)
	for r := 0; r < c.readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			for {
				select {
				case <-stopReaders:
					readerLats[r] = lats
					return
				default:
				}
				t0 := time.Now() // anonylint:wall-clock — latency sample
				_, cerr := co.Count(domain)
				_, rerr := co.Release(c.k1)
				for _, err := range []error{cerr, rerr} {
					if err == nil {
						continue
					}
					if errors.Is(err, shard.ErrPartial) {
						partialsMu.Lock()
						partials++
						partialsMu.Unlock()
						continue
					}
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
				lats = append(lats, time.Since(t0)) // anonylint:wall-clock — latency sample
			}
		}()
	}

	if c.writers > 0 {
		writersWG.Wait()
	} else {
		select {
		case <-time.After(2 * time.Second):
		case <-stop:
		}
	}
	writeElapsed := time.Since(start) // anonylint:wall-clock — throughput measurement only
	close(stopReaders)
	wg.Wait()
	elapsed := time.Since(start) // anonylint:wall-clock — throughput measurement only

	perShard, coPartials, coRetries := co.Stats()
	if err := co.Close(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}

	if c.writers > 0 {
		for si := 0; si < c.shards; si++ {
			lats := make([][]time.Duration, 0, c.writers)
			var total errCounts
			for w := 0; w < c.writers; w++ {
				lats = append(lats, buckets[w][si].lats)
				total.add(buckets[w][si].ec)
			}
			ws := summarize(lats, writeElapsed)
			fmt.Fprintf(out, "shard %d %v: writes: %s\n", si, perShard[si].Range, ws)
			if c.overload {
				issued := total.issued()
				shedPct := 0.0
				if issued > 0 {
					shedPct = 100 * float64(total.shed) / float64(issued)
				}
				fmt.Fprintf(out, "shard %d errors: issued=%d acked=%d shed=%d (%.1f%% shed) expired=%d degraded=%d recovering=%d transient=%d other=%d\n",
					si, issued, total.acked, total.shed, shedPct, total.expired, total.degraded, total.recovering, total.transient, total.other)
			}
			st := perShard[si].Serve
			if st.Batches > 0 {
				fmt.Fprintf(out, "shard %d commits: %d batches, %.1f ops/fsync, state=%v server shed=%d\n",
					si, st.Batches, float64(st.Ops)/float64(st.Batches), st.State, st.Shed)
			}
		}
		fmt.Fprintf(out, "coordinator: partial reads=%d (%d server-side) resubmitted transients=%d\n",
			partials, coPartials, coRetries)
	}
	if c.readers > 0 {
		rs := summarize(readerLats, elapsed)
		fmt.Fprintf(out, "reads:  %s\n", rs)
	}
	return nil
}
