// Command loadgen is a closed-loop load driver for the concurrent
// serving layer (internal/serve): a fixed number of writer and reader
// goroutines issue operations back-to-back against one durable store
// for a fixed operation budget, and the tool reports per-class
// throughput (ops/sec) and latency quantiles (p50/p99).
//
// Closed-loop means each goroutine waits for its operation to finish
// before issuing the next, so offered load adapts to service time —
// the natural regime for measuring group commit, whose batches form
// from whoever is blocked at the same instant.
//
// Usage:
//
//	loadgen -n 20000 -ops 5000 -writers 8 -readers 4
//	loadgen -dir ./store -nosync=false -writers 16 -batch 64
//	loadgen -dataset patients -readers 8 -k1 25
//	loadgen -overload -writers 32 -queue 4 -batch 4 -deadline 2
//	loadgen -shards 4 -writers 8 -readers 2
//
// The store is created in -dir (a temporary directory by default),
// preloaded with -n records in one bulk batch, then churned: writers
// interleave inserts, relocations and deletes of their own key
// stripes; readers loop snapshot releases at granularity -k1 and
// range counts against the current view. Durability is real unless
// -nosync is set: every group commit is an fsync.
//
// With -overload the tool measures admission control instead of
// aborting on the first error: typed rejections (ErrOverloaded,
// ErrDeadlineExceeded, …) are counted per class and the report adds
// the shed rate alongside the server's own counters. Size the queue
// below the writer count (-queue < -writers) to actually provoke
// shedding. In every mode SIGINT drains gracefully: in-flight
// operations finish, counters are reported for the partial run.
//
// With -shards N the store is split into N contiguous SFC key ranges,
// each with its own serving stack (internal/shard); mutations route by
// curve key, readers issue cross-shard counts and audited joint
// releases, and the report breaks throughput, latency quantiles,
// error-class counts and shed rate down per shard.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"sync"
	"time"

	"spatialanon/internal/attr"
	"spatialanon/internal/dataset"
	"spatialanon/internal/retry"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/serve"
	"spatialanon/internal/wal"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type config struct {
	dir      string
	dataset  string
	profile  string
	n        int
	ops      int
	writers  int
	readers  int
	batch    int
	k        int
	k1       int
	seed     int64
	nosync   bool
	overload bool
	queue    int
	deadline int
	shards   int
}

func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.dir, "dir", "", "store directory (default: a fresh temp dir, removed on exit)")
	fs.StringVar(&c.dataset, "dataset", "landsend", "dataset schema: landsend or patients")
	fs.StringVar(&c.profile, "profile", "churn", "workload profile: churn (mixed write/read) or read (accelerated point/range sessions)")
	fs.IntVar(&c.n, "n", 20000, "records preloaded before the measured run")
	fs.IntVar(&c.ops, "ops", 4000, "total mutations the writers share")
	fs.IntVar(&c.writers, "writers", 8, "writer goroutines (0 = read-only run)")
	fs.IntVar(&c.readers, "readers", 4, "reader goroutines (0 = write-only run)")
	fs.IntVar(&c.batch, "batch", 64, "group-commit batch cap (serve.Options.MaxBatch)")
	fs.IntVar(&c.k, "k", 10, "base anonymity parameter of the store")
	fs.IntVar(&c.k1, "k1", 0, "release granularity readers ask for (0 = base k)")
	fs.Int64Var(&c.seed, "seed", 42, "data generator seed")
	fs.BoolVar(&c.nosync, "nosync", false, "skip fsync on commit (throughput ceiling, no durability)")
	fs.BoolVar(&c.overload, "overload", false, "keep driving through typed rejections; report shed rate and per-error-class counts")
	fs.IntVar(&c.queue, "queue", 0, "submission queue depth (serve.Options.QueueDepth; 0 = 4×batch)")
	fs.IntVar(&c.deadline, "deadline", 0, "queue deadline in group-commit ticks (serve.Options.DeadlineTicks; 0 = none)")
	fs.IntVar(&c.shards, "shards", 1, "shard the store into N SFC key ranges, one serving stack each; report is per shard")
	if err := fs.Parse(args); err != nil {
		return c, err
	}
	if c.shards < 1 {
		return c, fmt.Errorf("need at least one shard")
	}
	if c.shards > 1 && c.profile != "churn" {
		return c, fmt.Errorf("-shards applies to the churn profile only")
	}
	if c.profile != "churn" && c.profile != "read" {
		return c, fmt.Errorf("unknown profile %q (want churn or read)", c.profile)
	}
	if c.profile == "read" && c.readers <= 0 {
		return c, fmt.Errorf("read profile needs at least one reader")
	}
	if c.writers < 0 || c.readers < 0 || c.writers+c.readers == 0 {
		return c, fmt.Errorf("need at least one writer or reader")
	}
	if c.n < c.k {
		return c, fmt.Errorf("preload %d below base k %d: no release exists", c.n, c.k)
	}
	// In the churn profile -ops is a write budget, meaningless without
	// writers; in the read profile it is the per-class read budget.
	if c.profile == "churn" && c.ops > 0 && c.writers == 0 {
		c.ops = 0
	}
	return c, nil
}

func schemaFor(name string) (*attr.Schema, func(n int, seed int64) []attr.Record, error) {
	switch name {
	case "landsend":
		return dataset.LandsEndSchema(), dataset.GenerateLandsEnd, nil
	case "patients":
		return dataset.PatientsSchema(), dataset.GeneratePatients, nil
	}
	return nil, nil, fmt.Errorf("unknown dataset %q", name)
}

// quantile returns the q-quantile of the sorted latency sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

type classStats struct {
	ops      int
	elapsed  time.Duration
	p50, p99 time.Duration
}

func summarize(lats [][]time.Duration, elapsed time.Duration) classStats {
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return classStats{
		ops:     len(all),
		elapsed: elapsed,
		p50:     quantile(all, 0.50),
		p99:     quantile(all, 0.99),
	}
}

// errCounts buckets overload-mode outcomes by the serving layer's
// typed error taxonomy. One instance per writer, merged at the end, so
// the hot loop never touches shared state.
type errCounts struct {
	acked, shed, expired, degraded, recovering, transient, other int
}

func (ec *errCounts) classify(err error) {
	switch {
	case err == nil:
		ec.acked++
	case errors.Is(err, serve.ErrOverloaded):
		ec.shed++
	case errors.Is(err, serve.ErrDeadlineExceeded):
		ec.expired++
	case errors.Is(err, serve.ErrDegraded):
		ec.degraded++
	case errors.Is(err, serve.ErrRecovering):
		ec.recovering++
	case retry.IsTransient(err):
		ec.transient++
	default:
		ec.other++
	}
}

func (ec *errCounts) add(o errCounts) {
	ec.acked += o.acked
	ec.shed += o.shed
	ec.expired += o.expired
	ec.degraded += o.degraded
	ec.recovering += o.recovering
	ec.transient += o.transient
	ec.other += o.other
}

func (ec errCounts) issued() int {
	return ec.acked + ec.shed + ec.expired + ec.degraded + ec.recovering + ec.transient + ec.other
}

func (s classStats) String() string {
	if s.ops == 0 {
		return "0 ops"
	}
	rate := float64(s.ops) / s.elapsed.Seconds()
	return fmt.Sprintf("%d ops in %v — %.0f ops/sec, p50 %v, p99 %v",
		s.ops, s.elapsed.Round(time.Millisecond), rate, s.p50.Round(time.Microsecond), s.p99.Round(time.Microsecond))
}

func run(args []string, out io.Writer) error {
	c, err := parseFlags(args)
	if err != nil {
		return err
	}
	schema, generate, err := schemaFor(c.dataset)
	if err != nil {
		return err
	}
	dir := c.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "loadgen")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if c.shards > 1 {
		return shardedRun(c, dir, schema, generate, out)
	}

	st, err := wal.Create(wal.Options{
		Dir:    dir,
		Tree:   rplustree.Config{Schema: schema, BaseK: c.k},
		NoSync: c.nosync,
	})
	if err != nil {
		return err
	}
	defer st.Close()

	// Preload in one batch: one frame, one fsync.
	recs := generate(c.n, c.seed)
	preload := make([]wal.Op, len(recs))
	for i, r := range recs {
		preload[i] = wal.Op{Type: wal.TypeInsert, Rec: r}
	}
	if _, err := st.ApplyBatch(preload); err != nil {
		return fmt.Errorf("preload: %w", err)
	}

	s, err := serve.New(st, serve.Options{
		MaxBatch:      c.batch,
		QueueDepth:    c.queue,
		DeadlineTicks: c.deadline,
	})
	if err != nil {
		return err
	}

	// Graceful SIGINT drain: stop issuing new operations, let whatever
	// is in flight commit, report the partial run. The handler is
	// uninstalled on exit so a second interrupt kills the process.
	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt)
	defer signal.Stop(sigCh)
	runDone := make(chan struct{})
	defer close(runDone)
	go func() {
		select {
		case <-sigCh:
			fmt.Fprintf(out, "loadgen: interrupt — draining in-flight operations\n")
			close(stop)
		case <-runDone:
		}
	}()

	fmt.Fprintf(out, "loadgen: %s profile=%s n=%d k=%d writers=%d readers=%d batch=%d ops=%d fsync=%v\n",
		c.dataset, c.profile, c.n, c.k, c.writers, c.readers, c.batch, c.ops, !c.nosync)

	if c.profile == "read" {
		return readProfile(c, s, generate, out, stop)
	}

	// Fresh records the writers will churn, striped per writer so no
	// two goroutines ever race on one key.
	churn := generate(c.ops+c.writers, c.seed+1)
	for i := range churn {
		churn[i].ID = int64(c.n + i + 1)
	}

	var (
		wg          sync.WaitGroup
		writersWG   sync.WaitGroup
		writerLats  = make([][]time.Duration, c.writers)
		readerLats  = make([][]time.Duration, c.readers)
		writerCount = make([]errCounts, c.writers)
		errMu       sync.Mutex
		firstErr    error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	stopReaders := make(chan struct{})
	start := time.Now() // anonylint:wall-clock — throughput measurement only

	for w := 0; w < c.writers; w++ {
		w := w
		wg.Add(1)
		writersWG.Add(1)
		go func() {
			defer wg.Done()
			defer writersWG.Done()
			// Writer w owns churn indices w, w+writers, w+2*writers, …
			// and cycles insert → relocate → delete over its own keys,
			// so the store's size stays near the preload and every
			// update and delete hits a live record.
			lats := make([]time.Duration, 0, c.ops/c.writers+1)
			defer func() { writerLats[w] = lats }()
			var cur attr.Record
			j := 0
			for i := w; i < c.ops; i += c.writers {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now() // anonylint:wall-clock — latency sample
				var err error
				switch j % 3 {
				case 0:
					cur = churn[i]
					err = s.Insert(cur)
				case 1:
					moved := attr.Record{ID: cur.ID, QI: append([]float64(nil), cur.QI...), Sensitive: cur.Sensitive}
					moved.QI[0]++
					_, err = s.Update(cur.ID, cur.QI, moved)
					cur = moved
				case 2:
					_, err = s.Delete(cur.ID, cur.QI)
				}
				lats = append(lats, time.Since(t0)) // anonylint:wall-clock — latency sample
				if c.overload {
					// Overload runs measure the rejections instead of
					// dying on them: a shed or expired submission was
					// never committed, so the loop just drives on.
					writerCount[w].classify(err)
				} else if err != nil {
					fail(fmt.Errorf("writer %d: %w", w, err))
					return
				}
				j++
			}
		}()
	}

	for r := 0; r < c.readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lats []time.Duration
			q := attr.Box(nil)
			for {
				select {
				case <-stopReaders:
					readerLats[r] = lats
					return
				default:
				}
				t0 := time.Now() // anonylint:wall-clock — latency sample
				v := s.View()
				if _, err := v.Release(c.k1); err != nil {
					fail(fmt.Errorf("reader %d: %w", r, err))
					return
				}
				if q == nil {
					// Derive one range query from the view's own base
					// release so it always intersects live data.
					base, err := v.Base()
					if err != nil {
						fail(err)
						return
					}
					q = base[0].Box.Clone()
				}
				if _, err := v.Count(q); err != nil {
					fail(fmt.Errorf("reader %d count: %w", r, err))
					return
				}
				lats = append(lats, time.Since(t0)) // anonylint:wall-clock — latency sample
				// A pure read loop on a write-free run would never end;
				// bound it by wall clock via the stop channel below.
			}
		}()
	}

	// Writers define the run length; a read-only run gets a fixed
	// window instead.
	if c.writers > 0 {
		writersWG.Wait()
	} else {
		select {
		case <-time.After(2 * time.Second):
		case <-stop:
		}
	}
	writeElapsed := time.Since(start) // anonylint:wall-clock — throughput measurement only
	close(stopReaders)
	wg.Wait()
	elapsed := time.Since(start) // anonylint:wall-clock — throughput measurement only

	if err := s.Close(); err != nil {
		return err
	}
	if firstErr != nil {
		return firstErr
	}

	if c.writers > 0 {
		ws := summarize(writerLats, writeElapsed)
		fmt.Fprintf(out, "writes: %s\n", ws)
		stats := s.Stats()
		if stats.Batches > 0 {
			fmt.Fprintf(out, "commits: %d batches, %.1f ops/fsync, max batch %d, epoch %d\n",
				stats.Batches, float64(stats.Ops)/float64(stats.Batches), stats.MaxBatch, stats.Epoch)
		}
		if c.overload {
			var total errCounts
			for i := range writerCount {
				total.add(writerCount[i])
			}
			issued := total.issued()
			shedPct := 0.0
			if issued > 0 {
				shedPct = 100 * float64(total.shed) / float64(issued)
			}
			fmt.Fprintf(out, "overload: issued=%d acked=%d shed=%d (%.1f%% shed) expired=%d degraded=%d recovering=%d transient=%d other=%d\n",
				issued, total.acked, total.shed, shedPct, total.expired, total.degraded, total.recovering, total.transient, total.other)
			fmt.Fprintf(out, "server: state=%v shed=%d expired=%d retries=%d recoveries=%d\n",
				stats.State, stats.Shed, stats.Expired, stats.Retries, stats.Recoveries)
		}
	}
	if c.readers > 0 {
		rs := summarize(readerLats, elapsed)
		fmt.Fprintf(out, "reads:  %s\n", rs)
	}
	return nil
}
