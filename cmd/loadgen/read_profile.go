package main

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"spatialanon/internal/attr"
	"spatialanon/internal/query"
	"spatialanon/internal/serve"
)

// The read profile measures the zero-alloc serving read path: every
// reader goroutine holds its own Counter/Estimator session against the
// current view (re-minted whenever the epoch moves) and drives point
// and range COUNT queries back-to-back. Reported per class: ops/sec,
// p50/p99 latency, and allocs/op measured by mallocs-delta calibration
// on a warm session — the number CI pins to zero.

// allocsPerOp measures steady-state heap allocations of one warm
// operation: mallocs-delta over n calls on a quiesced heap. It runs
// before any background churn starts, so the delta belongs to f alone.
func allocsPerOp(n int, f func()) float64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	f() // warm caches and scratch outside the window
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(n)
}

// readProfile runs the read-only measurement loop. Writers (if
// configured) churn the store in the background — unmeasured — so the
// epoch moves and sessions exercise their refresh path.
func readProfile(c config, s *serve.Server, generate func(n int, seed int64) []attr.Record, out io.Writer, stop chan struct{}) error {
	v := s.View()
	if _, err := v.Release(c.k1); err != nil {
		return fmt.Errorf("read profile: %w", err)
	}
	recs := v.Records()
	points := query.PointWorkload(recs, 512, c.seed+2)
	ranges := query.FullRangeWorkload(recs, 512, c.seed+3)

	// Calibrate allocs/op on a warm session before any churn starts.
	counter, err := v.Counter(c.k1)
	if err != nil {
		return err
	}
	est, err := v.Estimator(c.k1)
	if err != nil {
		return err
	}
	i := 0
	pointAllocs := allocsPerOp(512, func() { counter.Point(points[i%len(points)]); i++ })
	rangeAllocs := allocsPerOp(512, func() { counter.Range(ranges[i%len(ranges)]); i++ })
	estAllocs := allocsPerOp(512, func() { est.Estimate(ranges[i%len(ranges)]); i++ })

	// Background churn: writers cycle inserts over fresh IDs so epochs
	// advance under the readers. Unmeasured; errors end the churn only.
	var churnWG sync.WaitGroup
	churnStop := make(chan struct{})
	if c.writers > 0 {
		fresh := generate(c.writers*64, c.seed+4)
		for w := 0; w < c.writers; w++ {
			w := w
			churnWG.Add(1)
			go func() {
				defer churnWG.Done()
				for j := 0; ; j++ {
					select {
					case <-churnStop:
						return
					default:
					}
					r := fresh[(w*64+j%64)%len(fresh)]
					r.ID = int64(c.n + w*1_000_000 + j + 1)
					if s.Insert(r) != nil {
						return
					}
				}
			}()
		}
	}

	// Measured run: readers share a per-class budget of c.ops queries,
	// striped like the churn writers. Each reader re-mints its sessions
	// whenever the published epoch moves past the one it holds.
	type readerOut struct {
		point, rng []time.Duration
		err        error
	}
	outs := make([]readerOut, c.readers)
	var wg sync.WaitGroup
	start := time.Now() // anonylint:wall-clock — throughput measurement only
	for r := 0; r < c.readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rv := s.View()
			rc, err := rv.Counter(c.k1)
			if err != nil {
				outs[r].err = err
				return
			}
			for i := r; i < c.ops; i += c.readers {
				select {
				case <-stop:
					return
				default:
				}
				if cur := s.View(); cur.Epoch() != rv.Epoch() {
					rv = cur
					if rc, err = rv.Counter(c.k1); err != nil {
						outs[r].err = err
						return
					}
				}
				t0 := time.Now() // anonylint:wall-clock — latency sample
				rc.Point(points[i%len(points)])
				outs[r].point = append(outs[r].point, time.Since(t0)) // anonylint:wall-clock — latency sample
				t0 = time.Now()                                       // anonylint:wall-clock — latency sample
				rc.Range(ranges[i%len(ranges)])
				outs[r].rng = append(outs[r].rng, time.Since(t0)) // anonylint:wall-clock — latency sample
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start) // anonylint:wall-clock — throughput measurement only
	close(churnStop)
	churnWG.Wait()
	if err := s.Close(); err != nil {
		return err
	}

	pointLats := make([][]time.Duration, c.readers)
	rangeLats := make([][]time.Duration, c.readers)
	for r := range outs {
		if outs[r].err != nil {
			return fmt.Errorf("reader %d: %w", r, outs[r].err)
		}
		pointLats[r] = outs[r].point
		rangeLats[r] = outs[r].rng
	}
	fmt.Fprintf(out, "points: %s, allocs/op %.2f\n", summarize(pointLats, elapsed), pointAllocs)
	fmt.Fprintf(out, "ranges: %s, allocs/op %.2f\n", summarize(rangeLats, elapsed), rangeAllocs)
	fmt.Fprintf(out, "estimates (calibration only): allocs/op %.2f\n", estAllocs)
	stats := s.Stats()
	fmt.Fprintf(out, "epochs: %d published during the run\n", stats.Epoch)
	return nil
}
