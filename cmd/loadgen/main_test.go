package main

import (
	"bytes"
	"strings"
	"testing"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput: %s", args, err, out.String())
	}
	return out.String()
}

// TestMixedLoad drives the full closed loop — writers and readers —
// on a small store with fsync disabled so the test is fast on any
// filesystem, and checks both report lines appear with sane content.
func TestMixedLoad(t *testing.T) {
	out := runOK(t,
		"-dir", t.TempDir(), "-n", "600", "-ops", "300",
		"-writers", "4", "-readers", "2", "-batch", "16", "-k", "5", "-nosync")
	for _, want := range []string{"writes: 300 ops", "reads:", "ops/sec", "p50", "p99", "commits:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteOnly and TestReadOnlyFlagged pin the degenerate shapes.
func TestWriteOnly(t *testing.T) {
	out := runOK(t,
		"-dir", t.TempDir(), "-n", "200", "-ops", "120",
		"-writers", "2", "-readers", "0", "-k", "4", "-nosync", "-dataset", "patients")
	if !strings.Contains(out, "writes: 120 ops") {
		t.Fatalf("write-only run misreported:\n%s", out)
	}
	if strings.Contains(out, "reads:") {
		t.Fatalf("write-only run reported reads:\n%s", out)
	}
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-writers", "0", "-readers", "0"}, &out); err == nil {
		t.Fatal("zero writers and readers accepted")
	}
	if err := run([]string{"-n", "3", "-k", "10", "-nosync"}, &out); err == nil {
		t.Fatal("preload below k accepted")
	}
	if err := run([]string{"-dataset", "nope", "-nosync"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
