package main

import (
	"bytes"
	"os"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

func runOK(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\noutput: %s", args, err, out.String())
	}
	return out.String()
}

// TestMixedLoad drives the full closed loop — writers and readers —
// on a small store with fsync disabled so the test is fast on any
// filesystem, and checks both report lines appear with sane content.
func TestMixedLoad(t *testing.T) {
	out := runOK(t,
		"-dir", t.TempDir(), "-n", "600", "-ops", "300",
		"-writers", "4", "-readers", "2", "-batch", "16", "-k", "5", "-nosync")
	for _, want := range []string{"writes: 300 ops", "reads:", "ops/sec", "p50", "p99", "commits:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteOnly and TestReadOnlyFlagged pin the degenerate shapes.
func TestWriteOnly(t *testing.T) {
	out := runOK(t,
		"-dir", t.TempDir(), "-n", "200", "-ops", "120",
		"-writers", "2", "-readers", "0", "-k", "4", "-nosync", "-dataset", "patients")
	if !strings.Contains(out, "writes: 120 ops") {
		t.Fatalf("write-only run misreported:\n%s", out)
	}
	if strings.Contains(out, "reads:") {
		t.Fatalf("write-only run reported reads:\n%s", out)
	}
}

// TestOverloadReport drives far more closed-loop writers than the
// queue admits, so the bounded queue must shed — typed, counted, and
// without aborting the run.
func TestOverloadReport(t *testing.T) {
	out := runOK(t,
		"-dir", t.TempDir(), "-n", "300", "-ops", "2000",
		"-writers", "12", "-readers", "0", "-batch", "1", "-queue", "1",
		"-k", "4", "-nosync", "-overload")
	if !strings.Contains(out, "overload: issued=2000") {
		t.Fatalf("overload report missing or short:\n%s", out)
	}
	if !strings.Contains(out, "server: state=healthy") {
		t.Fatalf("server counters line missing:\n%s", out)
	}
	m := regexp.MustCompile(`overload: issued=2000 acked=(\d+) shed=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("unparseable overload line:\n%s", out)
	}
	acked, _ := strconv.Atoi(m[1])
	shed, _ := strconv.Atoi(m[2])
	if shed == 0 {
		t.Fatalf("queue of 1 against 12 writers never shed:\n%s", out)
	}
	if acked+shed > 2000 {
		t.Fatalf("acked %d + shed %d exceed issued 2000:\n%s", acked, shed, out)
	}
}

// TestSIGINTDrains interrupts a read-only run mid-window and expects a
// graceful drain: run returns nil well before the window ends, with
// the interrupt noted and the read report still printed.
func TestSIGINTDrains(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-dir", dir, "-n", "200", "-k", "4",
			"-writers", "0", "-readers", "2", "-nosync"}, &out)
	}()
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("interrupted run failed: %v\n%s", err, out.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not drain after SIGINT")
	}
	if !strings.Contains(out.String(), "interrupt") {
		t.Fatalf("drain not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "reads:") {
		t.Fatalf("partial read report missing:\n%s", out.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-writers", "0", "-readers", "0"}, &out); err == nil {
		t.Fatal("zero writers and readers accepted")
	}
	if err := run([]string{"-n", "3", "-k", "10", "-nosync"}, &out); err == nil {
		t.Fatal("preload below k accepted")
	}
	if err := run([]string{"-dataset", "nope", "-nosync"}, &out); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// TestReadProfile drives the accelerated read path: per-class report
// lines with ops/sec, quantiles and a calibrated allocs/op that must
// be zero on the warm session.
func TestReadProfile(t *testing.T) {
	out := runOK(t,
		"-dir", t.TempDir(), "-profile", "read", "-n", "800", "-ops", "400",
		"-writers", "2", "-readers", "3", "-k", "5", "-nosync")
	for _, want := range []string{"points: 400 ops", "ranges: 400 ops", "ops/sec", "allocs/op", "epochs:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	for _, m := range regexp.MustCompile(`(points|ranges): .*allocs/op ([\d.]+)`).FindAllStringSubmatch(out, -1) {
		if a, _ := strconv.ParseFloat(m[2], 64); a != 0 {
			t.Fatalf("%s report %s allocs/op, want 0:\n%s", m[1], m[2], out)
		}
	}
}

// TestReadProfileValidation pins the profile flag's error cases.
func TestReadProfileValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-profile", "nope", "-nosync"}, &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run([]string{"-profile", "read", "-readers", "0", "-writers", "2", "-nosync"}, &out); err == nil {
		t.Fatal("read profile without readers accepted")
	}
}
