// Command experiments regenerates the paper's evaluation tables and
// figures (Section 5). Each experiment prints the rows of the
// corresponding plot; EXPERIMENTS.md records a full run next to the
// paper's reported shapes.
//
// Usage:
//
//	experiments -fig all
//	experiments -fig fig7a -records 200000
//	experiments -fig fig8b -records 100000
//	experiments -fig fig12c -queries 1000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spatialanon/internal/experiments"
)

// printer is what every figure result knows how to do.
type printer interface{ Print(io.Writer) }

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", "experiment id: fig7a fig7b fig8a fig8b fig9 fig10 fig11 fig12a fig12b fig12c fig12d churn churn-durable, comma-separated, or all")
		records = fs.Int("records", 0, "Lands End-like data set size (0 = suite default; paper: 4591581)")
		queries = fs.Int("queries", 0, "query workload size (0 = default; paper: 1000)")
		ksFlag  = fs.String("ks", "", "comma-separated anonymity levels (default 5,10,25,50,100,250,500,1000)")
		batch   = fs.Int("batch", 0, "incremental batch size (0 = default; paper: 500000)")
		batches = fs.Int("batches", 0, "number of incremental batches")
		seed    = fs.Int64("seed", 0, "workload seed")
		sizes   = fs.String("sizes", "", "fig8a: comma-separated record counts (default 6 steps from records/8)")
		memMB   = fs.Int("mem", 0, "fig8a/fig8b: memory budget in MB (fig8b sweeps down from it)")
		workers = fs.Int("workers", 0, "worker goroutines per experiment (0 = all cores, 1 = serial; results are identical, only wall-clock changes)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	}
	cfg := experiments.Config{
		Records:   *records,
		Queries:   *queries,
		BatchSize: *batch,
		Batches:   *batches,
		Seed:      *seed,
		Workers:   *workers,
	}
	if *ksFlag != "" {
		ks, err := parseInts(*ksFlag)
		if err != nil {
			return fmt.Errorf("-ks: %w", err)
		}
		cfg.Ks = ks
	}

	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = []string{"fig7a", "fig7b", "fig8a", "fig8b", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c", "fig12d", "churn", "churn-durable"}
	}
	for i, id := range ids {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		res, err := dispatch(strings.TrimSpace(id), cfg, *sizes, *memMB)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		res.Print(stdout)
	}
	return nil
}

func dispatch(id string, cfg experiments.Config, sizesFlag string, memMB int) (printer, error) {
	defRecords := experiments.Defaults().Records
	if cfg.Records > 0 {
		defRecords = cfg.Records
	}
	switch id {
	case "fig7a":
		return experiments.Fig7a(cfg)
	case "fig7b":
		return experiments.Fig7b(cfg)
	case "fig8a":
		sizes := []int{defRecords / 8, defRecords / 4, defRecords / 2, defRecords, defRecords * 2, defRecords * 4}
		if sizesFlag != "" {
			var err error
			sizes, err = parseInts(sizesFlag)
			if err != nil {
				return nil, fmt.Errorf("-sizes: %w", err)
			}
		}
		return experiments.Fig8a(cfg, sizes, memMB<<20)
	case "fig8b":
		top := memMB << 20
		if top == 0 {
			top = 8 << 20
		}
		memories := []int{top, top / 2, top / 4, top / 8}
		return experiments.Fig8b(cfg, defRecords, memories)
	case "fig9":
		sizes := []int{defRecords / 4, defRecords / 2, defRecords, defRecords * 2}
		if sizesFlag != "" {
			var err error
			sizes, err = parseInts(sizesFlag)
			if err != nil {
				return nil, fmt.Errorf("-sizes: %w", err)
			}
		}
		return experiments.Fig9(cfg, sizes)
	case "fig10":
		return experiments.Fig10(cfg)
	case "fig11":
		return experiments.Fig11(cfg)
	case "fig12a":
		return experiments.Fig12a(cfg)
	case "fig12b":
		return experiments.Fig12b(cfg)
	case "fig12c":
		return experiments.Fig12c(cfg)
	case "fig12d":
		return experiments.Fig12d(cfg)
	case "churn":
		// Extension beyond the paper: quality under delete+insert churn.
		return experiments.ExtChurn(cfg, 8, defRecords/10)
	case "churn-durable":
		// Durable variant: the same churn through the write-ahead-logged
		// store, recovering from disk after every round and reporting
		// the recovery I/O a crash at that point would have cost.
		return experiments.ExtChurnDurable(cfg, 6, defRecords/10, defRecords/3)
	default:
		return nil, fmt.Errorf("unknown experiment id (want fig7a..fig12d or all)")
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		if v <= 0 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
