package main

import (
	"bytes"
	"strings"
	"testing"
)

// tinyArgs keeps the suite fast in unit tests.
func tinyArgs(extra ...string) []string {
	return append([]string{"-records", "2000", "-queries", "60", "-ks", "5,10", "-batch", "500", "-batches", "2"}, extra...)
}

func TestSingleFigures(t *testing.T) {
	for _, fig := range []string{"fig7a", "fig7b", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c", "fig12d"} {
		var out, errBuf bytes.Buffer
		if err := run(tinyArgs("-fig", fig), &out, &errBuf); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
		if !strings.Contains(out.String(), "Figure") {
			t.Fatalf("%s output: %q", fig, out.String())
		}
	}
}

func TestFig8WithSizes(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(tinyArgs("-fig", "fig8a", "-sizes", "1000,2000", "-mem", "2"), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 8(a)") {
		t.Fatalf("output: %q", out.String())
	}
	out.Reset()
	if err := run(tinyArgs("-fig", "fig8b", "-mem", "4"), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 8(b)") {
		t.Fatalf("output: %q", out.String())
	}
}

func TestCommaSeparatedFigures(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(tinyArgs("-fig", "fig9,fig12c"), &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 9") || !strings.Contains(s, "Figure 12(c)") {
		t.Fatalf("output: %q", s)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "nope"},
		{"-ks", "abc"},
		{"-ks", "0"},
		{"-fig", "fig8a", "-sizes", "x"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("5, 10,25")
	if err != nil || len(got) != 3 || got[2] != 25 {
		t.Fatalf("%v %v", got, err)
	}
	if _, err := parseInts("5,-1"); err == nil {
		t.Fatal("negative accepted")
	}
}
