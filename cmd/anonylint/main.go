// Command anonylint is the project's multichecker: it runs the seven
// project-specific analyzers (pagerconfine, kparam, pubfreeze,
// noalloc, errwrap, detrand, panicpolicy — see internal/lint) over
// the given package patterns and exits nonzero when any finding is
// reported.
//
// Usage:
//
//	anonylint [-list] [-json] [packages]
//
// Patterns default to ./... and follow the go tool's directory-pattern
// forms ("./...", "./internal/query"). anonylint must run from inside
// the module so module-local imports resolve. Findings print as
//
//	path/file.go:line:col: analyzer: message
//
// or, with -json, as one JSON object per line:
//
//	{"file":"path/file.go","line":12,"col":3,"analyzer":"noalloc","message":"…"}
//
// — the machine-readable form CI uses to turn findings into per-line
// annotations instead of a raw log dump.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"spatialanon/internal/lint"
	"spatialanon/internal/lint/analysis"
	"spatialanon/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their scopes, then exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON Lines instead of file:line:col text")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: anonylint [-list] [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Suite() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-14s %s\n", a.Name, doc)
		}
		return
	}
	findings, err := run(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "anonylint: %v\n", err)
		os.Exit(2)
	}
	if err := print(os.Stdout, findings, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "anonylint: %v\n", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// finding is one diagnostic in resolved file:line form — the unit both
// output modes print.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run loads the patterns and applies the suite, collecting findings in
// package order (positions are sorted within each analyzer's output).
func run(patterns []string) ([]finding, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	pkgs, err := load.NewLoader().Patterns(cwd, patterns)
	if err != nil {
		return nil, err
	}
	suite := lint.Suite()
	var findings []finding
	for _, pkg := range pkgs {
		for _, a := range suite {
			if !a.Applies(pkg.Path) {
				continue
			}
			diags, err := analysis.Run(a.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return findings, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File:     relTo(cwd, pos.Filename),
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
			}
		}
	}
	return findings, nil
}

// print writes the findings as text or JSON Lines.
func print(out io.Writer, findings []finding, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(out)
		for _, f := range findings {
			if err := enc.Encode(f); err != nil {
				return err
			}
		}
		return nil
	}
	for _, f := range findings {
		if _, err := fmt.Fprintf(out, "%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message); err != nil {
			return err
		}
	}
	return nil
}

func relTo(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
