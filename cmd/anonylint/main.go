// Command anonylint is the project's multichecker: it runs the four
// project-specific analyzers (pagerconfine, detrand, panicpolicy,
// kparam — see internal/lint) over the given package patterns and
// exits nonzero when any finding is reported.
//
// Usage:
//
//	anonylint [-list] [packages]
//
// Patterns default to ./... and follow the go tool's directory-pattern
// forms ("./...", "./internal/query"). anonylint must run from inside
// the module so module-local imports resolve. Findings print as
//
//	path/file.go:line:col: analyzer: message
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spatialanon/internal/lint"
	"spatialanon/internal/lint/analysis"
	"spatialanon/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and their scopes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: anonylint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Suite() {
			doc, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-14s %s\n", a.Name, doc)
		}
		return
	}
	n, err := run(flag.Args(), os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "anonylint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// run loads the patterns, applies the suite and prints findings,
// returning how many were reported.
func run(patterns []string, out *os.File) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	pkgs, err := load.NewLoader().Patterns(cwd, patterns)
	if err != nil {
		return 0, err
	}
	suite := lint.Suite()
	count := 0
	for _, pkg := range pkgs {
		for _, a := range suite {
			if !a.Applies(pkg.Path) {
				continue
			}
			diags, err := analysis.Run(a.Analyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				return count, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Fprintf(out, "%s:%d:%d: %s\n", relTo(cwd, pos.Filename), pos.Line, pos.Column, d.Message)
				count++
			}
		}
	}
	return count, nil
}

func relTo(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
