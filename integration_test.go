package spatialanon

import (
	"bytes"
	"strings"
	"testing"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/compact"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
	"spatialanon/internal/query"
	"spatialanon/internal/rplustree"
	"spatialanon/internal/sfc"
	"spatialanon/internal/verify"
)

// TestEndToEndLifecycle drives the full system the way a data owner
// would: bulk load, incremental batches, corrections, multi-granular
// release, adversarial collusion check, query accuracy, and CSV
// publication.
func TestEndToEndLifecycle(t *testing.T) {
	schema := dataset.LandsEndSchema()
	const k = 10
	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema:   schema,
		BaseK:    k,
		BulkLoad: &rplustree.BulkLoadConfig{RecordBytes: 32},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: bulk anonymize the backlog.
	backlog := dataset.GenerateLandsEnd(6000, 301)
	if err := rt.Load(backlog); err != nil {
		t.Fatal(err)
	}

	// Phase 2: three incremental batches arrive.
	stream := dataset.LandsEndStream(3000, 302)
	var arrived []attr.Record
	for b := 0; b < 3; b++ {
		batch := stream.NextBatch(1000)
		for i := range batch {
			batch[i].ID += 1_000_000 // distinct from the backlog
		}
		arrived = append(arrived, batch...)
		if err := rt.Load(batch); err != nil {
			t.Fatal(err)
		}
		view, err := rt.Partitions(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := anonmodel.CheckAnonymity(view, anonmodel.KAnonymity{K: k}); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		if anonmodel.TotalRecords(view) != 6000+(b+1)*1000 {
			t.Fatalf("batch %d: view holds %d records", b, anonmodel.TotalRecords(view))
		}
	}

	// Phase 3: 250 cancellations.
	for i := 0; i < 250; i++ {
		if found, err := rt.Delete(arrived[i].ID, arrived[i].QI); err != nil || !found {
			t.Fatalf("delete %d failed", arrived[i].ID)
		}
	}
	if err := rt.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := verify.Tree(rt.Tree(), verify.TreeOptions{}); err != nil {
		t.Fatal(err)
	}

	// Phase 4: multi-granular release to three trust tiers, then play
	// the colluding adversary.
	releases, err := rt.MultiGranular([]int{k, 3 * k, 10 * k})
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]anonmodel.Partition, len(releases))
	for i, rel := range releases {
		sets[i] = rel.Partitions
		if err := anonmodel.CheckAnonymity(rel.Partitions, anonmodel.KAnonymity{K: rel.Granularity}); err != nil {
			t.Fatalf("granularity %d: %v", rel.Granularity, err)
		}
		if err := verify.Release(rel.Partitions, anonmodel.KAnonymity{K: rel.Granularity}); err != nil {
			t.Fatalf("granularity %d: %v", rel.Granularity, err)
		}
	}
	if err := core.VerifyCollusionSafety(sets, k); err != nil {
		t.Fatal(err)
	}
	if err := verify.Releases(sets, k); err != nil {
		t.Fatal(err)
	}

	// Phase 5: query accuracy on the finest release obeys the paper's
	// ordering vs uncompacted Mondrian.
	live := make([]attr.Record, 0, rt.Len())
	for _, p := range sets[0] {
		live = append(live, p.Records...)
	}
	queries := query.FullRangeWorkload(live, 150, 303)
	rtRes, err := query.Evaluate(sets[0], live, queries)
	if err != nil {
		t.Fatal(err)
	}
	md := &core.MondrianAnonymizer{Schema: schema, Constraint: anonmodel.KAnonymity{K: k}}
	cp := make([]attr.Record, len(live))
	copy(cp, live)
	mdPs, err := md.Anonymize(cp)
	if err != nil {
		t.Fatal(err)
	}
	mdRes, err := query.Evaluate(mdPs, live, queries)
	if err != nil {
		t.Fatal(err)
	}
	if query.MeanError(rtRes) > query.MeanError(mdRes)*1.3 {
		t.Fatalf("rtree error %v far above mondrian %v", query.MeanError(rtRes), query.MeanError(mdRes))
	}

	// Phase 6: publish as CSV; every record appears exactly once.
	var buf bytes.Buffer
	if err := core.WriteCSV(&buf, schema, sets[0]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+rt.Len() {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+rt.Len())
	}
}

// TestAlgorithmsAgreeOnFundamentals runs every anonymizer on identical
// input and checks the cross-cutting contract: the record multiset is
// preserved, the constraint holds, records sit inside their boxes, and
// compaction never hurts certainty.
func TestAlgorithmsAgreeOnFundamentals(t *testing.T) {
	schema := dataset.LandsEndSchema()
	recs := dataset.GenerateLandsEnd(2500, 310)
	domain := attr.DomainOf(schema.Dims(), recs)
	cons := anonmodel.KAnonymity{K: 12}

	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{Schema: schema, Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	algos := []core.Anonymizer{
		rt,
		&core.MondrianAnonymizer{Schema: schema, Constraint: cons},
		&core.MondrianAnonymizer{Schema: schema, Constraint: cons, Relaxed: true},
		&core.SFCAnonymizer{Curve: sfc.Hilbert, Constraint: cons},
		&core.SFCAnonymizer{Curve: sfc.ZOrder, Constraint: cons},
		&core.GridAnonymizer{Schema: schema, Constraint: cons},
		&core.QuadAnonymizer{Schema: schema, Constraint: cons},
	}
	wantIDs := map[int64]bool{}
	for _, r := range recs {
		wantIDs[r.ID] = true
	}
	for _, a := range algos {
		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		ps, err := a.Anonymize(cp)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := anonmodel.CheckAnonymity(ps, cons); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if err := verify.Release(ps, cons); err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		got := map[int64]bool{}
		for _, p := range ps {
			for _, r := range p.Records {
				if got[r.ID] {
					t.Fatalf("%s: record %d duplicated", a.Name(), r.ID)
				}
				got[r.ID] = true
			}
		}
		if len(got) != len(wantIDs) {
			t.Fatalf("%s: %d of %d records survive", a.Name(), len(got), len(wantIDs))
		}
		// Compaction is monotone for every algorithm's output.
		cm := quality.Certainty(schema, ps, domain)
		cmC := quality.Certainty(schema, compact.Partitions(ps), domain)
		if cmC > cm+1e-9 {
			t.Fatalf("%s: compaction worsened CM %v -> %v", a.Name(), cm, cmC)
		}
	}
}

// TestDeterministicRebuild: the same records in the same order produce
// the identical anonymization (partition boxes and membership), which
// the experiment harness and any audit trail rely on.
func TestDeterministicRebuild(t *testing.T) {
	recs := dataset.GeneratePatients(1000, 320)
	build := func() []anonmodel.Partition {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema: dataset.PatientsSchema(),
			BaseK:  5,
			BulkLoad: &rplustree.BulkLoadConfig{
				PageSize: 512, MemoryBytes: 512 * 64, RecordBytes: 12,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		if err := rt.Load(cp); err != nil {
			t.Fatal(err)
		}
		ps, err := rt.Partitions(10)
		if err != nil {
			t.Fatal(err)
		}
		if err := verify.Tree(rt.Tree(), verify.TreeOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := verify.Release(ps, anonmodel.KAnonymity{K: 10}); err != nil {
			t.Fatal(err)
		}
		return ps
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("partition counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Box.Equal(b[i].Box) || a[i].Size() != b[i].Size() {
			t.Fatalf("partition %d differs between rebuilds", i)
		}
		for j := range a[i].Records {
			if a[i].Records[j].ID != b[i].Records[j].ID {
				t.Fatalf("partition %d membership differs", i)
			}
		}
	}
}

// TestInfeasibleConstraintSurfacesEverywhere: every algorithm reports
// an error (rather than emitting a violating table) when the input
// cannot satisfy the constraint.
func TestInfeasibleConstraintSurfacesEverywhere(t *testing.T) {
	schema := dataset.PatientsSchema()
	// Three records, all with the same sensitive value: (k=2, l=2) is
	// unsatisfiable no matter the partitioning.
	recs := []attr.Record{
		{ID: 1, QI: []float64{30, 0, 53706}, Sensitive: "flu"},
		{ID: 2, QI: []float64{40, 1, 53710}, Sensitive: "flu"},
		{ID: 3, QI: []float64{50, 0, 53715}, Sensitive: "flu"},
	}
	cons := anonmodel.LDiversity{K: 2, L: 2}
	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{Schema: schema, Constraint: cons})
	if err != nil {
		t.Fatal(err)
	}
	algos := []core.Anonymizer{
		rt,
		&core.MondrianAnonymizer{Schema: schema, Constraint: cons},
		&core.SFCAnonymizer{Constraint: cons},
		&core.GridAnonymizer{Schema: schema, Constraint: cons},
		&core.QuadAnonymizer{Schema: schema, Constraint: cons},
	}
	for _, a := range algos {
		cp := make([]attr.Record, len(recs))
		copy(cp, recs)
		if ps, err := a.Anonymize(cp); err == nil {
			if cerr := anonmodel.CheckAnonymity(ps, cons); cerr == nil {
				t.Fatalf("%s: emitted a 'valid' table for an unsatisfiable constraint", a.Name())
			} else {
				t.Fatalf("%s: emitted a violating table without error: %v", a.Name(), cerr)
			}
		}
	}
	// A refused publication must not leave the index corrupt: the tree
	// keeps serving (and future feasible releases keep working) after
	// the error.
	if err := verify.Tree(rt.Tree(), verify.TreeOptions{}); err != nil {
		t.Fatal(err)
	}
}
