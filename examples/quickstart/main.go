// Quickstart: anonymize a small patient table with the R⁺-tree index,
// print the anonymized rows (the Figure 1(b) shape), and compare the
// result's quality against the Mondrian baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
)

func main() {
	const (
		n = 300
		k = 5
	)
	schema := dataset.PatientsSchema()
	records := dataset.GeneratePatients(n, 42)

	// 1. Build the anonymizing index: leaves hold between k and 2k
	//    records; each leaf's MBR is the generalization its records
	//    publish under.
	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema: schema,
		BaseK:  k,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Load(records); err != nil {
		log.Fatal(err)
	}

	// 2. Materialize the k-anonymous table.
	partitions, err := rt.Partitions(k)
	if err != nil {
		log.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(partitions, anonmodel.KAnonymity{K: k}); err != nil {
		log.Fatal(err) // cannot happen; shown for the pattern
	}
	fmt.Printf("anonymized %d patients into %d partitions (k=%d)\n\n", n, len(partitions), k)

	// 3. Print the first few rows the way the paper's Figure 1(b) does:
	//    ranges for numeric attributes, hierarchy labels for sex.
	header, rows, err := core.Render(schema, partitions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-4s %-16s %s\n", header[0], header[1], header[2], header[3])
	for _, row := range rows[:8] {
		fmt.Printf("%-14s %-4s %-16s %s\n", row[0], row[1], row[2], row[3])
	}
	fmt.Println("...")

	// 4. Compare quality with the top-down Mondrian baseline on the
	//    same records, with and without the Section 4 compaction.
	domain := attr.DomainOf(schema.Dims(), records)
	fmt.Printf("\n%-22s %14s %10s %8s\n", "system", "discernibility", "certainty", "KL")
	for _, a := range []core.Anonymizer{
		&core.MondrianAnonymizer{Schema: schema, Constraint: anonmodel.KAnonymity{K: k}},
		&core.MondrianAnonymizer{Schema: schema, Constraint: anonmodel.KAnonymity{K: k}, Compact: true},
	} {
		cp := make([]attr.Record, len(records))
		copy(cp, records)
		ps, err := a.Anonymize(cp)
		if err != nil {
			log.Fatal(err)
		}
		rep := quality.Measure(schema, ps, domain)
		fmt.Printf("%-22s %14.0f %10.2f %8.4f\n", a.Name(), rep.Discernibility, rep.Certainty, rep.KLDivergence)
	}
	rep := quality.Measure(schema, partitions, domain)
	fmt.Printf("%-22s %14.0f %10.2f %8.4f\n", "rtree (this example)", rep.Discernibility, rep.Certainty, rep.KLDivergence)

	// 5. The anonymized table is ordinary CSV.
	f, err := os.CreateTemp("", "anonymized-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := core.WriteCSV(f, schema, partitions); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull anonymized table written to %s\n", f.Name())
}
