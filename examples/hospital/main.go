// Hospital: the multi-granular release scenario of Section 3. A
// university hospital shares its patient records with three entities of
// decreasing trust — local researchers, an outside research group, and
// the open Internet — at granularities 5, 20 and 50, all derived from
// one index by the leaf-scan algorithm (Figure 5). The example then
// plays the adversary: it correlates all three releases and verifies
// that the intersection cells never isolate fewer than k=5 patients
// (Definition 2 / Lemma 1), and contrasts that with the unsafe
// alternative of independently re-anonymizing per entity.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
)

func main() {
	const (
		patients = 2000
		baseK    = 5
	)
	schema := dataset.PatientsSchema()
	records := dataset.GeneratePatients(patients, 7)

	// The hospital also insists on 3-diversity of ailments inside every
	// published group, layered on k-anonymity.
	constraint := anonmodel.LDiversity{K: baseK, L: 3}
	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema:     schema,
		Constraint: constraint,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.Load(records); err != nil {
		log.Fatal(err)
	}

	// One index, three releases: leaf-scan groups whole leaves, so each
	// patient stays bound to the same >= k companions in every release.
	entities := []struct {
		name string
		k    int
	}{
		{"university researchers", 5},
		{"external research group", 20},
		{"public Internet release", 50},
	}
	releases, err := rt.MultiGranular([]int{5, 20, 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hospital data: %d patients, constraint %v\n\n", patients, constraint)
	sets := make([][]anonmodel.Partition, len(releases))
	for i, rel := range releases {
		sets[i] = rel.Partitions
		sizes := sizeRange(rel.Partitions)
		fmt.Printf("%-26s k=%-3d %4d partitions, sizes %s\n",
			entities[i].name, rel.Granularity, len(rel.Partitions), sizes)
	}

	// Adversary check: correlate all three releases.
	if err := core.VerifyCollusionSafety(sets, baseK); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollusion check over all 3 releases: SAFE (every intersection cell >= %d patients)\n", baseK)

	// The unsafe alternative: re-anonymize independently per entity.
	// Different runs cut the space differently, so intersections can
	// isolate individuals. We emulate it by re-anonymizing a shuffled
	// copy with Mondrian and correlating with the index release.
	shuffled := make([]attr.Record, len(records))
	copy(shuffled, records)
	dataset.Shuffle(shuffled, 99)
	md := &core.MondrianAnonymizer{Schema: schema, Constraint: anonmodel.KAnonymity{K: 20}}
	independent, err := md.Anonymize(shuffled)
	if err != nil {
		log.Fatal(err)
	}
	err = core.VerifyCollusionSafety([][]anonmodel.Partition{sets[0], independent}, baseK)
	if err != nil {
		fmt.Printf("independent re-anonymization at k=20: UNSAFE as expected\n  %v\n", err)
	} else {
		fmt.Println("independent re-anonymization happened to stay safe on this data — rerun with another seed")
	}

	// The hierarchical alternative (Section 3.1): every tree level is a
	// release, granularities multiply up the tree.
	hier, err := rt.HierarchicalReleases()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhierarchical releases (Section 3.1): one per index level\n")
	for lvl, rel := range hier {
		fmt.Printf("  level %d: %4d partitions, smallest %d records\n",
			lvl, len(rel.Partitions), rel.Granularity)
	}
}

func sizeRange(ps []anonmodel.Partition) string {
	min, max := ps[0].Size(), ps[0].Size()
	for _, p := range ps {
		if p.Size() < min {
			min = p.Size()
		}
		if p.Size() > max {
			max = p.Size()
		}
	}
	return fmt.Sprintf("%d..%d", min, max)
}
