// Streaming: incremental anonymization of a live customer-sale feed
// (Section 2.2, Figures 7(b) and 11). Batches of new orders arrive and
// are inserted into the live index; after each batch the anonymized
// view is refreshed with one leaf scan, and its quality is compared to
// re-anonymizing everything from scratch with the top-down baseline —
// which is the only option a non-incremental algorithm has. Late
// order cancellations exercise deletion.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"spatialanon/internal/anonmodel"
	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/quality"
	"spatialanon/internal/rplustree"
)

func main() {
	const (
		batchSize = 2000
		batches   = 6
		k         = 10
	)
	schema := dataset.LandsEndSchema()
	feed := dataset.LandsEndStream(batchSize*batches, 11)

	rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
		Schema:   schema,
		BaseK:    k,
		BulkLoad: &rplustree.BulkLoadConfig{RecordBytes: 32},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d batches of %d orders, publishing a %d-anonymous view after each\n\n",
		batches, batchSize, k)
	fmt.Printf("%6s %9s %12s %12s | %10s %10s\n",
		"batch", "indexed", "insert+scan", "reanon-all", "inc CM", "reanon CM")

	var all []attr.Record
	for b := 1; b <= batches; b++ {
		batch := feed.NextBatch(batchSize)
		all = append(all, batch...)

		start := time.Now()
		if err := rt.Load(batch); err != nil {
			log.Fatal(err)
		}
		view, err := rt.Partitions(k)
		if err != nil {
			log.Fatal(err)
		}
		incElapsed := time.Since(start)

		// What a non-incremental pipeline must do instead.
		cp := make([]attr.Record, len(all))
		copy(cp, all)
		start = time.Now()
		md := &core.MondrianAnonymizer{Schema: schema, Constraint: anonmodel.KAnonymity{K: k}}
		reanon, err := md.Anonymize(cp)
		if err != nil {
			log.Fatal(err)
		}
		reElapsed := time.Since(start)

		domain := attr.DomainOf(schema.Dims(), all)
		fmt.Printf("%6d %9d %12v %12v | %10.1f %10.1f\n",
			b, rt.Len(),
			incElapsed.Round(time.Millisecond), reElapsed.Round(time.Millisecond),
			quality.Certainty(schema, view, domain),
			quality.Certainty(schema, reanon, domain))
	}

	// A correction arrives: 500 orders are cancelled. Deletion is an
	// index operation; the refreshed view stays k-anonymous.
	for i := 0; i < 500; i++ {
		found, err := rt.Delete(all[i].ID, all[i].QI)
		if err != nil {
			log.Fatal(err)
		}
		if !found {
			log.Fatalf("cancel of order %d failed", all[i].ID)
		}
	}
	view, err := rt.Partitions(k)
	if err != nil {
		log.Fatal(err)
	}
	if err := anonmodel.CheckAnonymity(view, anonmodel.KAnonymity{K: k}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter cancelling 500 orders: %d records in %d partitions, still %d-anonymous\n",
		rt.Len(), len(view), k)
}
