// Workload: workload-aware anonymization via biased splitting
// (Section 2.4, Figures 12(c)/(d)). A data-mining team announces that
// its queries will range over Zipcode; the publisher builds one
// R⁺-tree with the default split policy and one biased to Zipcode,
// then measures the accuracy of 500 Zipcode COUNT queries on each.
// A weighted policy (the [33]-style importance weights) is shown as the
// softer alternative to hard bias.
//
//	go run ./examples/workload
package main

import (
	"fmt"
	"log"

	"spatialanon/internal/attr"
	"spatialanon/internal/core"
	"spatialanon/internal/dataset"
	"spatialanon/internal/query"
	"spatialanon/internal/rplustree"
)

func main() {
	const (
		n       = 8000
		k       = 10
		queries = 500
	)
	schema := dataset.LandsEndSchema()
	zip := schema.AttrIndex("zipcode")
	records := dataset.GenerateLandsEnd(n, 21)
	domain := attr.DomainOf(schema.Dims(), records)

	// The announced workload: COUNT(*) ... WHERE zipcode BETWEEN z1, z2.
	workload := query.SingleAttrWorkload(records, zip, queries, 5, domain)

	// Weights can be derived from the workload itself (Section 2.4's
	// weighted-certainty suggestion): attributes the queries constrain
	// tightly get proportionally more weight.
	derived := query.WeightsFromWorkload(workload, domain)
	fmt.Printf("derived attribute weights from the workload: zipcode=%.2f (others ~0)\n\n", derived[zip])

	policies := []struct {
		name  string
		split rplustree.SplitPolicy
	}{
		{"unbiased (min-margin)", nil},
		{"biased to zipcode", rplustree.BiasedPolicy{Axes: []int{zip}}},
		{"workload-derived weights", rplustree.WeightedPolicy{Weights: derived}},
	}

	fmt.Printf("workload: %d zipcode range queries over %d records (k=%d)\n\n", queries, n, k)
	fmt.Printf("%-24s %12s %16s\n", "split policy", "mean error", "partitions")
	var base float64
	for i, pol := range policies {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{
			Schema: schema,
			BaseK:  k,
			Split:  pol.split,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.Load(records); err != nil {
			log.Fatal(err)
		}
		ps, err := rt.Partitions(k)
		if err != nil {
			log.Fatal(err)
		}
		results, err := query.Evaluate(ps, records, workload)
		if err != nil {
			log.Fatal(err)
		}
		mean := query.MeanError(results)
		if i == 0 {
			base = mean
			fmt.Printf("%-24s %12.4f %16d\n", pol.name, mean, len(ps))
			continue
		}
		fmt.Printf("%-24s %12.4f %16d  (%.1fx more accurate)\n", pol.name, mean, len(ps), base/mean)
	}

	fmt.Println("\nthe same comparison, bucketed by query selectivity (Figure 12(d) shape):")
	for _, pol := range policies[:2] {
		rt, err := core.NewRTreeAnonymizer(core.RTreeConfig{Schema: schema, BaseK: k, Split: pol.split})
		if err != nil {
			log.Fatal(err)
		}
		if err := rt.Load(records); err != nil {
			log.Fatal(err)
		}
		ps, _ := rt.Partitions(k)
		results, err := query.Evaluate(ps, records, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s", pol.name)
		for _, b := range query.BySelectivity(results, n, []float64{0.01, 0.1, 0.5}) {
			fmt.Printf("  [%0.2f,%0.2f)=%.3f", b.Lo, b.Hi, b.Mean)
		}
		fmt.Println()
	}
}
